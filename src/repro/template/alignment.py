"""Multi-page token alignment for template induction.

The paper's template model (Section 3.1) is built from tokens that are
*invariant from page to page*:

    "The page template of a list page contains data that is shared by
    all list pages and is invariant from page to page. ...  If any of
    the tables on the pages contain more than two rows, the tags
    specifying the structure of the table will not be part of the page
    template, because they will appear more than once on that page."

That passage pins down the algorithm family: a token belongs to the
template only if it occurs **exactly once on every sample page**, and
the template is a sequence of such tokens whose relative order is the
same on every page.  (Row tags like ``<tr>`` occur many times per page,
so they are excluded and the whole table falls into one slot; numbered
entries like ``1.`` occur once per page on *every* page, so they join
the template and fragment the table — exactly the failure the paper
reports for the Amazon, BNBooks and Minnesota sites.)

This module computes that alignment:

1. count token texts per page; keep texts occurring exactly once on
   every page (*candidates*);
2. order candidates by their position on the first page;
3. keep the subset whose order is consistent on every other page, via
   repeated longest-increasing-subsequence (LIS) filtering.

For two pages (the paper's experimental setup) a single LIS pass is
exact; for more pages the iterative filter yields a common increasing
subsequence that is maximal in practice.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.tokens.tokenizer import Token

__all__ = ["AlignedToken", "align_pages", "longest_increasing_subsequence"]


@dataclass(frozen=True, slots=True)
class AlignedToken:
    """One template token with its position on every sample page.

    Attributes:
        text: the token text (identical on every page by construction).
        positions: ``positions[p]`` is the token's index in page ``p``'s
            token stream.
        is_html: whether this is a tag token.
    """

    text: str
    positions: tuple[int, ...]
    is_html: bool


def longest_increasing_subsequence(values: list[int]) -> list[int]:
    """Indices of one longest strictly-increasing subsequence of ``values``.

    Standard patience-sorting algorithm, O(n log n).

    >>> longest_increasing_subsequence([3, 1, 2, 5, 4])
    [1, 2, 4]
    """
    if not values:
        return []
    # tails[k] = index into values of the smallest tail of an increasing
    # subsequence of length k+1; parents reconstruct the chain.
    tails: list[int] = []
    parents = [-1] * len(values)
    for i, value in enumerate(values):
        # Binary search for the leftmost tail >= value.
        lo, hi = 0, len(tails)
        while lo < hi:
            mid = (lo + hi) // 2
            if values[tails[mid]] < value:
                lo = mid + 1
            else:
                hi = mid
        parents[i] = tails[lo - 1] if lo > 0 else -1
        if lo == len(tails):
            tails.append(i)
        else:
            tails[lo] = i
    # Walk back from the last tail.
    chain: list[int] = []
    node = tails[-1]
    while node != -1:
        chain.append(node)
        node = parents[node]
    chain.reverse()
    return chain


def _unique_positions(tokens: list[Token]) -> dict[str, int]:
    """Map each token text occurring exactly once to its stream index."""
    counts = Counter(token.text for token in tokens)
    return {
        token.text: token.index
        for token in tokens
        if counts[token.text] == 1
    }


def align_pages(pages_tokens: list[list[Token]]) -> list[AlignedToken]:
    """Align ``pages_tokens`` (>= 2 token streams) into template tokens.

    Returns the aligned tokens in page order.  The result may be empty
    when the pages share no order-consistent unique tokens — the
    "page template problem" of Table 4's note *a*.
    """
    if len(pages_tokens) < 2:
        raise ValueError("alignment needs at least two pages")

    per_page_unique = [_unique_positions(tokens) for tokens in pages_tokens]
    # Candidate texts: unique on every page.
    candidates = set(per_page_unique[0])
    for unique in per_page_unique[1:]:
        candidates &= set(unique)
    if not candidates:
        return []

    html_texts = {
        token.text
        for token in pages_tokens[0]
        if token.is_html and token.text in candidates
    }

    # Order by position on page 0; filter to order-consistency on each
    # further page via LIS, iterating until stable (one pass suffices
    # for two pages).
    ordered = sorted(candidates, key=per_page_unique[0].__getitem__)
    changed = True
    while changed:
        changed = False
        for unique in per_page_unique[1:]:
            positions = [unique[text] for text in ordered]
            keep = longest_increasing_subsequence(positions)
            if len(keep) != len(ordered):
                ordered = [ordered[i] for i in keep]
                changed = True

    return [
        AlignedToken(
            text=text,
            positions=tuple(unique[text] for unique in per_page_unique),
            is_html=text in html_texts,
        )
        for text in ordered
    ]

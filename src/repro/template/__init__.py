"""Page-template substrate (paper Section 3.1)."""

from repro.template.alignment import (
    AlignedToken,
    align_pages,
    longest_increasing_subsequence,
)
from repro.template.finder import (
    TemplateFinder,
    TemplateFinderConfig,
    TemplateVerdict,
)
from repro.template.model import PageTemplate, Slot
from repro.template.table_slot import TableRegion, resolve_table_regions

__all__ = [
    "AlignedToken",
    "PageTemplate",
    "Slot",
    "TableRegion",
    "TemplateFinder",
    "TemplateFinderConfig",
    "TemplateVerdict",
    "align_pages",
    "longest_increasing_subsequence",
    "resolve_table_regions",
]

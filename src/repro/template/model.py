"""Page-template data model: :class:`PageTemplate` and :class:`Slot`.

A template induced from N sample pages is a sequence of aligned tokens;
the *slots* are the N+1 gaps around them (before the first template
token, between consecutive template tokens, after the last).  Slot
``k`` exists on every page, with per-page content.

    "Slots are sections of the page that are not part of the page
    template. ... the entire table, data plus separators, will be
    contained in a single slot."  (paper Section 3.1)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.template.alignment import AlignedToken
from repro.tokens.tokenizer import Token

__all__ = ["PageTemplate", "Slot"]


@dataclass(frozen=True, slots=True)
class Slot:
    """One slot of a template, instantiated on one page.

    Attributes:
        slot_id: the gap index (0 = before the first template token).
        page_index: which sample page this instantiation belongs to.
        tokens: the page tokens falling in the gap.
    """

    slot_id: int
    page_index: int
    tokens: tuple[Token, ...]

    @property
    def text_token_count(self) -> int:
        """Number of visible-text (non-tag) tokens in the slot."""
        return sum(1 for token in self.tokens if not token.is_html)


@dataclass(frozen=True)
class PageTemplate:
    """A page template induced from a set of sample pages.

    Attributes:
        aligned: the template tokens with per-page positions.
        page_count: how many sample pages the template was induced from.
    """

    aligned: tuple[AlignedToken, ...]
    page_count: int

    @property
    def token_texts(self) -> tuple[str, ...]:
        """The template's token texts, in order."""
        return tuple(token.text for token in self.aligned)

    @property
    def slot_count(self) -> int:
        """Number of slots (gaps), including leading and trailing."""
        return len(self.aligned) + 1

    def slots_for_page(
        self, page_index: int, page_tokens: list[Token]
    ) -> list[Slot]:
        """Instantiate every slot on sample page ``page_index``.

        ``page_tokens`` must be the same token stream the template was
        induced from (positions are indices into it).
        """
        if not 0 <= page_index < self.page_count:
            raise IndexError(
                f"page index {page_index} out of range for "
                f"{self.page_count}-page template"
            )
        boundaries = [token.positions[page_index] for token in self.aligned]
        slots: list[Slot] = []
        previous_end = 0
        for slot_id, boundary in enumerate(boundaries):
            slots.append(
                Slot(slot_id, page_index, tuple(page_tokens[previous_end:boundary]))
            )
            previous_end = boundary + 1
        slots.append(
            Slot(len(boundaries), page_index, tuple(page_tokens[previous_end:]))
        )
        return slots

    def locate(self, tokens: list[Token]) -> list[int] | None:
        """Locate the template on an *unseen* page's token stream.

        Greedy left-to-right search for the template token texts in
        order.  Returns the matched positions, or ``None`` if the
        template does not fit the page.  Used by the page classifier to
        test whether a fetched page was generated from this template.
        """
        positions: list[int] = []
        cursor = 0
        token_texts = [token.text for token in tokens]
        for template_text in self.token_texts:
            try:
                found = token_texts.index(template_text, cursor)
            except ValueError:
                return None
            positions.append(found)
            cursor = found + 1
        return positions

    def coverage(self, tokens: list[Token]) -> float:
        """Fraction of template tokens locatable on an unseen page.

        A cheap template-similarity score in [0, 1]; the classifier
        uses it to group pages generated from the same template.
        """
        if not self.aligned:
            return 0.0
        token_texts = [token.text for token in tokens]
        cursor = 0
        matched = 0
        for template_text in self.token_texts:
            try:
                found = token_texts.index(template_text, cursor)
            except ValueError:
                continue
            matched += 1
            cursor = found + 1
        return matched / len(self.aligned)

"""repro — reproduction of *Using the Structure of Web Sites for
Automatic Segmentation of Tables* (Lerman, Getoor, Minton & Knoblock,
SIGMOD 2004).

The library implements the paper's full pipeline — page-template
induction, extract extraction, detail-page observation building, and
two record segmenters (a WSAT(OIP)-style CSP solver and a factored
probabilistic model learned with EM) — plus the substrates the
evaluation needs: a deterministic hidden-web site simulator standing
in for the paper's 12 live 2003-era sites, a crawler with a
list/detail page classifier, three layout-based baselines, and the
scoring/reporting machinery that regenerates every table in the
paper.

Quickstart::

    from repro import SegmentationPipeline, build_site

    site = build_site("superpages")
    pipeline = SegmentationPipeline("prob")
    run = pipeline.segment_generated_site(site)
    for record in run.pages[0].segmentation.records:
        print(record)

See README.md for the architecture overview, DESIGN.md for the
system inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core.config import METHODS, PipelineConfig
from repro.core.evaluation import PageScore, score_page
from repro.core.exceptions import ReproError
from repro.core.pipeline import PageRun, SegmentationPipeline, SiteRun
from repro.core.results import SegmentedRecord, Segmentation
from repro.core.hybrid import HybridConfig, HybridSegmenter
from repro.csp.segmenter import CspConfig, CspSegmenter
from repro.extraction.extracts import Extract, extract_strings
from repro.extraction.observations import Observation, ObservationTable
from repro.obs import ManualClock, MetricsRegistry, Observability, Tracer
from repro.prob.model import ProbConfig
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.reporting.experiment import run_corpus, run_site
from repro.reporting.tables import render_table4
from repro.sitegen.corpus import build_corpus, build_site
from repro.template.finder import TemplateFinder, TemplateFinderConfig
from repro.webdoc.page import Page

__version__ = "0.1.0"

__all__ = [
    "CspConfig",
    "CspSegmenter",
    "Extract",
    "HybridConfig",
    "HybridSegmenter",
    "METHODS",
    "ManualClock",
    "MetricsRegistry",
    "Observability",
    "Observation",
    "ObservationTable",
    "Page",
    "PageRun",
    "PageScore",
    "PipelineConfig",
    "ProbConfig",
    "ProbabilisticSegmenter",
    "ReproError",
    "SegmentationPipeline",
    "SegmentedRecord",
    "Segmentation",
    "SiteRun",
    "TemplateFinder",
    "TemplateFinderConfig",
    "Tracer",
    "__version__",
    "build_corpus",
    "build_site",
    "extract_strings",
    "render_table4",
    "run_corpus",
    "run_site",
    "score_page",
]

"""Content-based label/value parsing of detail pages.

Merging the two views of a record (paper Section 3: "we can
potentially combine the two views to get a more complete view of the
record") needs the detail pages parsed into attributes — without any
per-site wrapper.  The same content redundancy that drives
segmentation drives this parser:

* a *label* is an extract that occurs on almost every detail page of
  the site (labels come from the detail template: "Name:", "Phone:",
  ...; "almost" because a record with a missing field drops that
  field's label from its page);
* a label's *value* on one page is the run of non-label extracts
  immediately following it.

This is deliberately the mirror image of the list-page filter (which
*discards* extracts found on all detail pages as template junk — here
they are exactly what we want).
"""

from __future__ import annotations

from repro.extraction.extracts import extract_strings
from repro.tokens.tokenizer import DEFAULT_ALLOWED_PUNCT
from repro.webdoc.page import Page

__all__ = ["detail_field_pairs"]


def detail_field_pairs(
    detail_pages: list[Page],
    allowed_punct: frozenset[str] = DEFAULT_ALLOWED_PUNCT,
    max_value_extracts: int = 3,
    label_min_fraction: float = 0.8,
) -> dict[int, dict[str, str]]:
    """Parse every detail page into ``label -> value`` attributes.

    Args:
        detail_pages: the site's detail pages (>= 2 for the label
            inference to be meaningful).
        allowed_punct: the extract-punctuation set (must match the
            tokenizer's).
        max_value_extracts: how many consecutive non-label extracts
            after a label are joined into its value.
        label_min_fraction: an extract counts as a label when it
            appears on at least this fraction of the detail pages
            (missing fields keep some labels off some pages).

    Returns:
        ``{record index: {label: value}}``.  Labels appearing with no
        following value on a page are omitted for that page.
    """
    per_page_extracts = [
        extract_strings(list(page.tokens()), allowed_punct)
        for page in detail_pages
    ]

    # Labels: extract texts present on (almost) every page.
    if len(detail_pages) >= 2:
        from collections import Counter

        page_counts: Counter[str] = Counter()
        for extracts in per_page_extracts:
            page_counts.update({extract.text for extract in extracts})
        needed = label_min_fraction * len(detail_pages)
        label_texts = {
            text for text, count in page_counts.items() if count >= needed
        }
    else:
        label_texts = set()

    fields: dict[int, dict[str, str]] = {}
    for record_index, extracts in enumerate(per_page_extracts):
        attributes: dict[str, str] = {}
        position = 0
        while position < len(extracts):
            text = extracts[position].text
            if text in label_texts:
                values: list[str] = []
                cursor = position + 1
                while (
                    cursor < len(extracts)
                    and len(values) < max_value_extracts
                    and extracts[cursor].text not in label_texts
                ):
                    values.append(extracts[cursor].text)
                    cursor += 1
                if values:
                    # First label occurrence wins (later ones are
                    # usually footer repetitions).
                    attributes.setdefault(text, " ".join(values))
                position = cursor
            else:
                position += 1
        fields[record_index] = attributes
    return fields

"""Assembling a relational table from a segmentation.

A :class:`RelationalTable` is the "reconstructed database" view of one
list page: one row per record, one column per label ``L_0..L_{k-1}``,
cells holding extract texts.  Columns come from the segmentation's own
labels (the probabilistic segmenter produces them natively, Section
3.4) or from :class:`~repro.relational.csp_columns.CspColumnAssigner`
for CSP segmentations.  Detail-only fields can be merged in as extra
columns — the paper's "combine the two views" (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import Segmentation
from repro.obs import Observability, current as current_obs

__all__ = ["RelationalTable", "build_table"]


@dataclass
class RelationalTable:
    """One list page's records as a relation.

    Attributes:
        columns: ordered column names (``L0``, ``L1``, ... plus any
            merged detail labels).
        rows: one dict per record, keyed by column name; the special
            key ``_record`` holds the record id.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, str]] = field(default_factory=list)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.rows), len(self.columns))

    def column_values(self, column: str) -> list[str]:
        """All non-empty values of one column, in row order."""
        return [row[column] for row in self.rows if column in row]

    def merge_detail_fields(
        self, fields_per_record: dict[int, dict[str, str]]
    ) -> None:
        """Add detail-page label/value pairs as extra columns.

        Args:
            fields_per_record: for each record id, the label -> value
                mapping parsed from its detail page.  Labels become
                columns (kept in first-seen order); existing cells are
                not overwritten, so the list view wins where both
                views carry the attribute.
        """
        for row in self.rows:
            record_id = int(row["_record"])
            for label, value in fields_per_record.get(record_id, {}).items():
                if label not in self.columns:
                    self.columns.append(label)
                row.setdefault(label, value)

    def render(self, cell_width: int = 16) -> str:
        """ASCII rendering of the relation."""

        def clip(text: str) -> str:
            return (
                text if len(text) <= cell_width else text[: cell_width - 1] + "…"
            )

        header = " | ".join(
            clip(name).ljust(cell_width) for name in ["_record"] + self.columns
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                " | ".join(
                    clip(row.get(name, "")).ljust(cell_width)
                    for name in ["_record"] + self.columns
                )
            )
        return "\n".join(lines)


def build_table(
    segmentation: Segmentation,
    columns: dict[int, int] | None = None,
    obs: Observability | None = None,
) -> RelationalTable:
    """Build a :class:`RelationalTable` from a segmentation.

    Args:
        segmentation: the segmentation to tabulate.
        columns: optional ``seq -> column`` override (e.g. from the
            CSP column assigner).  Defaults to the segmentation's own
            per-record column labels; records without any column
            information fall back to positional columns.
        obs: observability bundle; the build is traced as one
            ``relational.build_table`` span with the final shape in
            its attributes (defaults to the installed bundle).

    Multiple extracts landing in the same (record, column) cell are
    joined with ``" / "`` — visible rather than silently dropped.
    """
    obs = obs if obs is not None else current_obs()
    with obs.span("relational.build_table") as span:
        table = _build_table(segmentation, columns)
        span.attributes["rows"], span.attributes["columns"] = table.shape
    obs.counter("relational.rows").inc(len(table.rows))
    return table


def _build_table(
    segmentation: Segmentation, columns: dict[int, int] | None
) -> RelationalTable:
    table = RelationalTable()
    max_column = -1

    def column_of(record, observation, position) -> int:
        if columns is not None and observation.seq in columns:
            return columns[observation.seq]
        if record.columns and observation.seq in record.columns:
            return record.columns[observation.seq]
        return position

    for record in segmentation.records:
        for position, observation in enumerate(record.observations):
            max_column = max(max_column, column_of(record, observation, position))

    table.columns = [f"L{index}" for index in range(max_column + 1)]
    for record in segmentation.records:
        row: dict[str, str] = {"_record": str(record.record_id)}
        for position, observation in enumerate(record.observations):
            name = f"L{column_of(record, observation, position)}"
            if name in row:
                row[name] = row[name] + " / " + observation.extract.text
            else:
                row[name] = observation.extract.text
        table.rows.append(row)
    return table

"""Relational reconstruction (paper Sections 3.4 and 6.3).

Beyond record segmentation, the paper points at the bigger prize:

    "Its expressiveness gives us the power to potentially assign
    extracts to individual attributes, and, when combined with a
    system that automatically extracts column labels from tables,
    reconstruct the relational database behind the Web site."

This subpackage delivers that layer:

* :mod:`repro.relational.table_builder` — assemble a
  :class:`RelationalTable` (records x columns) from a segmentation's
  column labels;
* :mod:`repro.relational.csp_columns` — the paper's suggested
  CSP-based attribute assignment ("different values of the same
  attribute should be similar in content, e.g., start with the same
  token type.  We may be able to express this observation as a set of
  constraints.");
* :mod:`repro.relational.detail_fields` — content-based label/value
  parsing of detail pages (labels are the extracts shared by *all*
  detail pages), used to merge the two views of each record;
* :mod:`repro.relational.evaluation` — column purity against the
  simulator's ground-truth fields;
* :mod:`repro.relational.naming` — semantic column names recovered
  from the detail pages' own labels (Section 3.4's "more semantically
  meaningful labels").
"""

from repro.relational.csp_columns import CspColumnAssigner
from repro.relational.detail_fields import detail_field_pairs
from repro.relational.evaluation import column_purity
from repro.relational.naming import apply_column_names, name_columns
from repro.relational.table_builder import RelationalTable, build_table

__all__ = [
    "CspColumnAssigner",
    "RelationalTable",
    "apply_column_names",
    "build_table",
    "column_purity",
    "detail_field_pairs",
    "name_columns",
]

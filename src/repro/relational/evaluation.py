"""Evaluating column assignments against ground-truth fields.

The simulator knows which field each list-row value came from, so a
column assignment can be scored by *purity*: within each predicted
column, the fraction of cells whose true field matches the column's
majority field.  Perfect column extraction puts every field in its own
column (purity 1.0); merging two fields into one column, or splitting
one field across columns, lowers it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.evaluation import truth_assignment
from repro.core.results import Segmentation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sitegen.site import ListPageTruth

__all__ = ["ColumnScore", "column_purity"]


@dataclass
class ColumnScore:
    """Column-extraction quality.

    Attributes:
        purity: weighted mean majority-field fraction over columns.
        columns: predicted column count.
        fields: distinct true fields observed.
        cells: scored (extract, column) cells.
    """

    purity: float
    columns: int
    fields: int
    cells: int


def _field_of(extract_text: str, row_values: dict[str, str]) -> str | None:
    """The true field an extract came from, by value containment."""
    for field_name, value in row_values.items():
        if extract_text == value or extract_text in value or value in extract_text:
            return field_name
    return None


def column_purity(
    segmentation: Segmentation,
    truth: "ListPageTruth",
    columns: dict[int, int] | None = None,
) -> ColumnScore:
    """Score a column assignment against the generator's fields.

    Args:
        segmentation: a segmentation carrying column labels (or pass
            ``columns`` explicitly, e.g. from the CSP assigner).
        truth: the list page's ground truth.
        columns: optional ``seq -> column`` override.
    """
    seq_truth = truth_assignment(segmentation.table, truth)
    rows_by_index = {row.record_index: row for row in truth.rows}

    by_column: dict[int, list[str]] = defaultdict(list)
    fields_seen: set[str] = set()
    for record in segmentation.records:
        for position, observation in enumerate(record.observations):
            if columns is not None:
                column = columns.get(observation.seq)
            elif record.columns is not None:
                column = record.columns.get(observation.seq)
            else:
                column = position
            if column is None:
                continue
            true_row_index = seq_truth.get(observation.seq)
            if true_row_index is None:
                continue
            field_name = _field_of(
                observation.extract.text,
                rows_by_index[true_row_index].values,
            )
            if field_name is None:
                continue
            by_column[column].append(field_name)
            fields_seen.add(field_name)

    total_cells = sum(len(members) for members in by_column.values())
    if total_cells == 0:
        return ColumnScore(purity=0.0, columns=0, fields=0, cells=0)

    weighted = 0.0
    for members in by_column.values():
        majority = Counter(members).most_common(1)[0][1]
        weighted += majority
    return ColumnScore(
        purity=weighted / total_cells,
        columns=len(by_column),
        fields=len(fields_seen),
        cells=total_cells,
    )

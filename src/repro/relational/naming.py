"""Semantic column naming from detail-page labels.

Section 3.4 leaves column labels anonymous ("the column labels will be
L_1, ..., L_k") and points at annotation systems for "more
semantically meaningful labels".  The detail pages themselves carry
the missing names: their templates label every attribute ("Owner:",
"Phone:", ...).  Since column extraction already aligns list cells
with records, a list column can be named after the detail label whose
values it agrees with.

:func:`name_columns` does exactly that: for every anonymous column,
count value agreements against every detail label (via
:func:`~repro.relational.detail_fields.detail_field_pairs` output) and
adopt the majority label when it explains enough of the column.
"""

from __future__ import annotations

from collections import Counter

from repro.relational.table_builder import RelationalTable

__all__ = ["name_columns", "apply_column_names"]


def _agreement(cell: str, detail_value: str) -> float:
    """Cell/detail agreement strength: exact equality scores 1.0,
    containment either way 0.5 (detail pages may render the value with
    extra context), otherwise 0."""
    if not cell or not detail_value:
        return 0.0
    if cell == detail_value:
        return 1.0
    if cell in detail_value or detail_value in cell:
        return 0.5
    return 0.0


def name_columns(
    table: RelationalTable,
    fields_per_record: dict[int, dict[str, str]],
    min_support: float = 0.5,
) -> dict[str, str]:
    """Map anonymous column names (``L0``...) to detail labels.

    Args:
        table: the reconstructed relation (anonymous columns).
        fields_per_record: detail label -> value per record id, from
            :func:`~repro.relational.detail_fields.detail_field_pairs`.
        min_support: a label must explain at least this fraction of a
            column's non-empty cells to be adopted.

    Returns:
        ``{anonymous name: semantic label}`` for the columns that
        earned a name.  Labels are never assigned twice; the column
        with more support wins a contested label, and every tie breaks
        deterministically (earlier column, then smaller label text) so
        the result is independent of vote or ingest order.
    """
    candidates: list[tuple[float, str, str]] = []
    for column in table.columns:
        if not column.startswith("L"):
            continue
        votes: Counter[str] = Counter()
        filled = 0
        for row in table.rows:
            cell = row.get(column)
            if cell is None:
                continue
            filled += 1
            record_fields = fields_per_record.get(int(row["_record"]), {})
            for label, value in record_fields.items():
                votes[label] += _agreement(cell, value)
        if not filled or not votes:
            continue
        # Deterministic majority: on a vote tie, the lexicographically
        # smallest label wins — never Counter insertion order, which
        # follows detail-page extract order and therefore ingest order.
        label, count = min(votes.items(), key=lambda vote: (-vote[1], vote[0]))
        support = count / filled
        if support >= min_support:
            candidates.append((support, column, label))

    names: dict[str, str] = {}
    used: set[str] = set()
    # Strongest support first; ties resolve by column then label text,
    # so the assignment is a pure function of the table contents.
    for support, column, label in sorted(
        candidates, key=lambda entry: (-entry[0], entry[1], entry[2])
    ):
        if column in names or label in used:
            continue
        names[column] = label
        used.add(label)
    return names


def apply_column_names(
    table: RelationalTable, names: dict[str, str]
) -> None:
    """Rename ``table``'s columns in place.

    A renamed column replaces any existing merged-detail column of the
    same label (the two carry the same attribute; the list view wins,
    matching :meth:`RelationalTable.merge_detail_fields`).
    """
    renamed: list[str] = []
    for column in table.columns:
        target = names.get(column, column)
        if target in renamed:
            continue
        renamed.append(target)
    for row in table.rows:
        for column, target in names.items():
            if column in row:
                row[target] = row.pop(column)
    table.columns = renamed

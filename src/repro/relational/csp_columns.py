"""CSP-based attribute (column) assignment.

The paper closes Section 6.3 with a research direction:

    "It may also be possible to obtain the attribute assignment in the
    CSP approach, by using the observation that different values of
    the same attribute should be similar in content, e.g., start with
    the same token type.  We may be able to express this observation
    as a set of constraints."

This module implements exactly that: column assignment as an
over-constrained pseudo-boolean problem solved with the same
WSAT(OIP)-style engine as segmentation.

Hard constraints:

* every assigned extract gets exactly one column;
* columns strictly increase along each record (fields appear in schema
  order; encoded over consecutive record members, which chains);
* the first extract of every record takes column 0 (the paper's
  never-missing first column, Section 5.1).

Soft constraints encode the content-similarity observation: each
variable ``y[i,c]`` carries a reward equal to the affinity between
extract *i*'s token-type vector and column *c*'s prototype signature.
Prototypes start from positional columns and the solve/re-estimate
loop runs a few rounds, WSAT maximizing total affinity subject to the
hard structure each time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import Segmentation
from repro.csp.constraints import ConstraintSystem, Relation
from repro.csp.wsat import WsatConfig, WsatSolver
from repro.tokens.types import NUM_TOKEN_TYPES, type_vector

__all__ = ["CspColumnAssigner"]


def _extract_signature(observation) -> np.ndarray:
    """Union type vector of an extract's tokens."""
    merged = np.zeros(NUM_TOKEN_TYPES)
    for token in observation.extract.tokens:
        merged = np.maximum(merged, np.array(type_vector(token.types)))
    return merged


@dataclass(frozen=True)
class CspColumnAssignerConfig:
    """Knobs for the column CSP.

    Attributes:
        rounds: solve / re-estimate iterations.
        wsat: local-search settings per round.
        max_columns: cap on the column count (defaults to the longest
            record).
    """

    rounds: int = 3
    wsat: WsatConfig = WsatConfig(max_flips=20_000, max_restarts=2)
    max_columns: int | None = None


class CspColumnAssigner:
    """Assign column labels to a CSP segmentation's extracts."""

    def __init__(self, config: CspColumnAssignerConfig | None = None) -> None:
        self.config = config or CspColumnAssignerConfig()

    def assign(self, segmentation: Segmentation) -> dict[int, int]:
        """Compute ``seq -> column`` for every assigned observation."""
        records = [
            record.observations
            for record in segmentation.records
            if record.observations
        ]
        if not records:
            return {}
        k = max(len(members) for members in records)
        if self.config.max_columns is not None:
            k = min(k, self.config.max_columns)
        k = max(k, 1)

        signatures = {
            observation.seq: _extract_signature(observation)
            for members in records
            for observation in members
        }

        # Initial prototypes from positional columns.
        assignment = {
            observation.seq: min(position, k - 1)
            for members in records
            for position, observation in enumerate(members)
        }
        for _ in range(max(1, self.config.rounds)):
            prototypes = self._prototypes(assignment, signatures, k)
            assignment = self._solve_round(records, signatures, prototypes, k)
        return assignment

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _prototypes(
        assignment: dict[int, int],
        signatures: dict[int, np.ndarray],
        k: int,
    ) -> np.ndarray:
        """Mean type signature per column (uniform when empty)."""
        prototypes = np.full((k, NUM_TOKEN_TYPES), 0.5)
        for column in range(k):
            members = [
                signatures[seq]
                for seq, assigned in assignment.items()
                if assigned == column
            ]
            if members:
                prototypes[column] = np.mean(members, axis=0)
        return prototypes

    def _solve_round(
        self,
        records,
        signatures: dict[int, np.ndarray],
        prototypes: np.ndarray,
        k: int,
    ) -> dict[int, int]:
        var_of: dict[tuple[int, int], int] = {}
        pair_of: list[tuple[int, int]] = []

        # Feasible columns per observation: position <= c, and enough
        # room for the rest of the record.
        feasible: dict[int, list[int]] = {}
        for members in records:
            size = len(members)
            for position, observation in enumerate(members):
                if position == 0:
                    columns = [0]
                else:
                    low = position
                    high = k - (size - position)
                    columns = list(range(low, max(low, high) + 1))
                    columns = [c for c in columns if c < k] or [k - 1]
                feasible[observation.seq] = columns
                for column in columns:
                    var_of[(observation.seq, column)] = len(pair_of)
                    pair_of.append((observation.seq, column))

        system = ConstraintSystem(num_vars=len(pair_of))
        # Uniqueness.
        for seq, columns in feasible.items():
            system.add(
                [(1, var_of[(seq, c)]) for c in columns],
                Relation.EQ,
                1,
                label=f"uniq[{seq}]",
            )
        # Strictly increasing columns along each record (consecutive
        # members chain the ordering through the whole record).
        for members in records:
            for first, second in zip(members, members[1:]):
                for c1 in feasible[first.seq]:
                    for c2 in feasible[second.seq]:
                        if c2 <= c1:
                            system.add(
                                [
                                    (1, var_of[(first.seq, c1)]),
                                    (1, var_of[(second.seq, c2)]),
                                ],
                                Relation.LE,
                                1,
                                label="order",
                            )
        # Soft content-similarity rewards.
        for seq, columns in feasible.items():
            signature = signatures[seq]
            for column in columns:
                affinity = float(
                    1.0
                    - np.abs(signature - prototypes[column]).mean()
                )
                system.add(
                    [(1, var_of[(seq, column)])],
                    Relation.GE,
                    1,
                    weight=max(affinity, 1e-3),
                    hard=False,
                    label=f"sim[{seq},{column}]",
                )

        # Seed: positional columns (always hard-feasible).
        seed = [0] * system.num_vars
        for members in records:
            size = len(members)
            for position, observation in enumerate(members):
                column = position if position < k else k - 1
                if (observation.seq, column) not in var_of:
                    column = feasible[observation.seq][0]
                seed[var_of[(observation.seq, column)]] = 1

        result = WsatSolver(system, self.config.wsat).solve(seed)
        assignment: dict[int, int] = {}
        for var, value in enumerate(result.assignment):
            if value == 1:
                seq, column = pair_of[var]
                # Lowest column wins if the assignment is degenerate.
                if seq not in assignment or column < assignment[seq]:
                    assignment[seq] = column
        # Guarantee totality even on pathological solver output.
        for seq, columns in feasible.items():
            assignment.setdefault(seq, columns[0])
        return assignment

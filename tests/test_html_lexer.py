"""Unit + property tests for the HTML lexer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import HtmlParseError
from repro.webdoc.html import EventKind, lex_html, strip_tags


def kinds(document):
    return [event.kind for event in lex_html(document)]


def texts(document):
    return [e.data for e in lex_html(document) if e.kind is EventKind.TEXT]


class TestBasicLexing:
    def test_simple_element(self):
        events = lex_html("<b>hi</b>")
        assert [(e.kind, e.data) for e in events] == [
            (EventKind.TAG_OPEN, "b"),
            (EventKind.TEXT, "hi"),
            (EventKind.TAG_CLOSE, "b"),
        ]

    def test_tag_names_lowercased(self):
        events = lex_html("<TABLE><TR></TR></TABLE>")
        assert [e.data for e in events] == ["table", "tr", "tr", "table"]

    def test_self_closing(self):
        (event,) = lex_html("<br/>")
        assert event.kind is EventKind.TAG_OPEN
        assert event.self_closing

    def test_attributes_quoted(self):
        (event,) = lex_html('<a href="x.html" class="big">')
        assert event.attrs == {"href": "x.html", "class": "big"}

    def test_attributes_single_quoted_and_unquoted(self):
        (event,) = lex_html("<a href='x.html' target=_blank>")
        assert event.attrs == {"href": "x.html", "target": "_blank"}

    def test_valueless_attribute(self):
        (event,) = lex_html("<input disabled>")
        assert event.attrs == {"disabled": ""}

    def test_duplicate_attribute_first_wins(self):
        (event,) = lex_html('<a href="first.html" href="second.html">')
        assert event.attrs["href"] == "first.html"

    def test_gt_inside_quoted_attr(self):
        (event, text) = lex_html('<a title="a > b">x')
        assert event.attrs["title"] == "a > b"
        assert text.data == "x"

    def test_raw_tag_spelling(self):
        open_event, close_event = lex_html("<td></td>")
        assert open_event.raw_tag() == "<td>"
        assert close_event.raw_tag() == "</td>"

    def test_raw_tag_on_text_raises(self):
        (event,) = lex_html("hello")
        with pytest.raises(ValueError):
            event.raw_tag()


class TestCommentsAndDeclarations:
    def test_comment(self):
        events = lex_html("a<!-- secret -->b")
        assert kinds("a<!-- secret -->b") == [
            EventKind.TEXT,
            EventKind.COMMENT,
            EventKind.TEXT,
        ]
        assert events[1].data == "<!-- secret -->"

    def test_doctype(self):
        assert kinds("<!DOCTYPE html>x")[0] is EventKind.DECLARATION

    def test_unterminated_comment_runs_to_eof(self):
        events = lex_html("a<!-- never closed")
        assert events[-1].kind is EventKind.COMMENT


class TestRawTextElements:
    def test_script_body_is_raw(self):
        events = lex_html("<script>if (a<b) { x(); }</script>after")
        assert [e.kind for e in events] == [
            EventKind.TAG_OPEN,
            EventKind.RAW,
            EventKind.TAG_CLOSE,
            EventKind.TEXT,
        ]
        assert events[1].data == "if (a<b) { x(); }"

    def test_style_body_is_raw(self):
        events = lex_html("<style>p > b { color: red }</style>")
        assert events[1].kind is EventKind.RAW

    def test_unclosed_script_runs_to_eof(self):
        events = lex_html("<script>var x = 1;")
        assert events[-1].kind is EventKind.RAW


class TestMalformedInput:
    def test_bare_lt_is_text(self):
        assert texts("x < y") == ["x ", "<", " y"]

    def test_unclosed_tag_at_eof(self):
        events = lex_html("<a href=x")
        assert events[0].kind is EventKind.TAG_OPEN
        assert events[0].attrs == {"href": "x"}

    def test_stray_close_junk(self):
        events = lex_html("</ >x")
        assert events[-1].kind is EventKind.TEXT

    def test_non_string_raises(self):
        with pytest.raises(HtmlParseError):
            lex_html(None)  # type: ignore[arg-type]
        with pytest.raises(HtmlParseError):
            lex_html(b"<b>bytes</b>")  # type: ignore[arg-type]

    def test_empty_document(self):
        assert lex_html("") == []


class TestOffsets:
    def test_event_spans_cover_document(self):
        document = '<html><body>Hello <a href="x">link</a>!</body></html>'
        events = lex_html(document)
        cursor = 0
        for event in events:
            assert event.start == cursor
            assert event.end > event.start
            cursor = event.end
        assert cursor == len(document)

    @given(
        st.text(
            alphabet=st.sampled_from(list("<>ab c/=\"'!-")),
            max_size=60,
        )
    )
    def test_spans_are_monotone_on_arbitrary_soup(self, soup):
        events = lex_html(soup)
        cursor = 0
        for event in events:
            assert event.start >= cursor
            assert event.end > event.start
            cursor = event.end
        assert cursor <= len(soup)


class TestStripTags:
    def test_visible_text_only(self):
        html = "<html><b>John</b>&amp;<i>Mary</i><script>x()</script></html>"
        assert strip_tags(html) == "John & Mary"

    def test_whitespace_collapsed(self):
        assert strip_tags("<p>  a  \n  b  </p>") == "a b"

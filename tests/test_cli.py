"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_site_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["segment", "nonexistent"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["segment", "ohio", "--method", "x"])


class TestSites:
    def test_lists_all_twelve(self):
        code, output = run_cli("sites")
        assert code == 0
        for name in ("amazon", "superpages", "ohio", "lee"):
            assert name in output
        assert output.count("\n") == 13  # header + 12 rows


class TestSegment:
    def test_clean_site_exit_zero(self):
        code, output = run_cli("segment", "lee", "--method", "csp")
        assert code == 0
        assert "Cor=16" in output
        assert "r0:" in output

    def test_page_filter(self):
        code, output = run_cli(
            "segment", "lee", "--method", "csp", "--page", "1"
        )
        assert "lee-list1.html" in output
        assert "lee-list0.html" not in output

    def test_imperfect_site_exit_nonzero(self):
        code, output = run_cli("segment", "michigan", "--method", "csp")
        assert code == 1  # page 2 has InC records

    def test_chaos_flags_print_crawl_health(self):
        code, output = run_cli(
            "segment", "lee", "--method", "csp",
            "--fault-rate", "0.3", "--fault-seed", "42",
        )
        assert output.startswith("crawl: requests=")
        assert "retries=" in output and "gaps=" in output
        assert "lee-list0.html" in output

    def test_chaos_run_is_reproducible(self):
        args = (
            "segment", "lee", "--method", "csp",
            "--fault-rate", "0.3", "--fault-seed", "7",
        )
        first = run_cli(*args)
        second = run_cli(*args)
        assert first[1].splitlines()[0] == second[1].splitlines()[0]


class TestShow:
    def test_list_page_html(self):
        code, output = run_cli("show", "superpages")
        assert code == 0
        assert output.startswith("<html>")
        assert "SuperPages" in output

    def test_detail_page_html(self):
        code, output = run_cli("show", "ohio", "--detail", "0")
        assert code == 0
        assert "Full Record" in output

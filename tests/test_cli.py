"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json
import tomllib
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_site_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["segment", "nonexistent"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["segment", "ohio", "--method", "x"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 2
        assert args.max_queue == 8
        assert args.method == "prob"
        assert args.wrapper_cache_dir is None
        assert args.deadline == 60.0
        assert args.drift_threshold == 0.5

    def test_serve_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--workers", "4",
                "--max-queue", "16", "--wrapper-cache-dir", "/tmp/w",
                "--drift-threshold", "0.8",
            ]
        )
        assert args.port == 0
        assert args.workers == 4
        assert args.max_queue == 16
        assert args.wrapper_cache_dir == "/tmp/w"
        assert args.drift_threshold == 0.8

    def test_serve_rejects_zero_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "0"])

    def test_serve_rejects_out_of_range_drift_threshold(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--drift-threshold", "1.5"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_matches_pyproject(self):
        pyproject = (
            Path(__file__).resolve().parent.parent / "pyproject.toml"
        )
        metadata = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        assert repro.__version__ == metadata["project"]["version"]


class TestSites:
    def test_lists_all_twelve(self):
        code, output = run_cli("sites")
        assert code == 0
        for name in ("amazon", "superpages", "ohio", "lee"):
            assert name in output
        assert output.count("\n") == 13  # header + 12 rows


class TestSegment:
    def test_clean_site_exit_zero(self):
        code, output = run_cli("segment", "lee", "--method", "csp")
        assert code == 0
        assert "Cor=16" in output
        assert "r0:" in output

    def test_page_filter(self):
        code, output = run_cli(
            "segment", "lee", "--method", "csp", "--page", "1"
        )
        assert "lee-list1.html" in output
        assert "lee-list0.html" not in output

    def test_imperfect_site_exit_nonzero(self):
        code, output = run_cli("segment", "michigan", "--method", "csp")
        assert code == 1  # page 2 has InC records

    def test_chaos_flags_print_crawl_health(self):
        code, output = run_cli(
            "segment", "lee", "--method", "csp",
            "--fault-rate", "0.3", "--fault-seed", "42",
        )
        assert output.startswith("crawl: requests=")
        assert "retries=" in output and "gaps=" in output
        assert "lee-list0.html" in output

    def test_chaos_run_is_reproducible(self):
        args = (
            "segment", "lee", "--method", "csp",
            "--fault-rate", "0.3", "--fault-seed", "7",
        )
        first = run_cli(*args)
        second = run_cli(*args)
        assert first[1].splitlines()[0] == second[1].splitlines()[0]


class TestSegmentJson:
    def test_json_summary_shape(self):
        code, output = run_cli("segment", "lee", "--method", "csp", "--json")
        summary = json.loads(output)  # whole output is one JSON document
        assert code == 0
        assert summary["site"] == "lee"
        assert summary["method"] == "csp"
        assert summary["exit_code"] == 0
        assert summary["record_count"] > 0
        assert summary["template_ok"] is True
        for page in summary["pages"]:
            assert set(page) >= {"url", "records", "record_count"}
            for record in page["records"]:
                assert set(record) == {"texts", "columns"}

    def test_json_exit_code_matches_text_mode(self):
        text_code, _ = run_cli("segment", "michigan", "--method", "csp")
        json_code, output = run_cli(
            "segment", "michigan", "--method", "csp", "--json"
        )
        summary = json.loads(output)
        assert json_code == text_code == 1
        assert summary["exit_code"] == 1

    def test_json_records_match_service_shape(self):
        # The CLI and POST /v1/segment share one serializer; the record
        # dicts must be interchangeable.
        _, output = run_cli("segment", "lee", "--method", "prob", "--json")
        summary = json.loads(output)
        texts = [
            record["texts"]
            for page in summary["pages"]
            for record in page["records"]
        ]
        assert texts and all(
            isinstance(text, str) for row in texts for text in row
        )

    def test_segment_dir_json(self, tmp_path):
        from repro.sitegen.corpus import build_site
        from repro.webdoc.store import save_sample

        site = build_site("lee")
        save_sample(
            tmp_path / "lee",
            "lee",
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
        )
        code, output = run_cli(
            "segment-dir", str(tmp_path), "--method", "csp", "--json"
        )
        summary = json.loads(output)
        assert code == 0
        assert summary["exit_code"] == 0
        assert summary["method"] == "csp"
        assert summary["by_status"] == {"ok": 1}
        (entry,) = summary["sites"]
        assert entry["task_id"] == "lee"
        assert entry["status"] == "ok"
        assert entry["record_count"] > 0


class TestShow:
    def test_list_page_html(self):
        code, output = run_cli("show", "superpages")
        assert code == 0
        assert output.startswith("<html>")
        assert "SuperPages" in output

    def test_detail_page_html(self):
        code, output = run_cli("show", "ohio", "--detail", "0")
        assert code == 0
        assert "Full Record" in output


class TestStoreFlow:
    """segment-dir --store then repro query, end to end on disk."""

    @pytest.fixture(scope="class")
    def stored(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("storeflow")
        corpus = root / "corpus"
        db = root / "tables.db"
        code, _ = run_cli(
            "export-corpus", str(corpus), "--sites", "ohio", "superpages"
        )
        assert code == 0
        code, text = run_cli(
            "segment-dir", str(corpus), "--store", str(db)
        )
        assert code == 0
        return db, text

    def test_segment_dir_reports_store_summary(self, stored):
        _, text = stored
        assert "store " in text and " sites, " in text and " rows" in text

    def test_query_ranks_and_prints_rows(self, stored):
        db, _ = stored
        code, text = run_cli("query", str(db), "name")
        assert code == 0
        assert "== ohio [prob]" in text
        assert "name→L0" in text
        assert "-- rows" in text

    def test_query_json_matches_wire_shape(self, stored):
        db, _ = stored
        code, text = run_cli("query", str(db), "name", "--json")
        assert code == 0
        payload = json.loads(text)
        assert set(payload) >= {"keywords", "tables", "rows", "row_count"}
        assert payload["tables"][0]["site"] in ("ohio", "superpages")
        assert payload["rows"][0]["record"] == 0

    def test_query_no_match_exits_one(self, stored):
        db, _ = stored
        code, text = run_cli("query", str(db), "zzz-no-such-column")
        assert code == 1
        assert "no tables match" in text

    def test_query_missing_db_exits_two(self, tmp_path):
        code, text = run_cli("query", str(tmp_path / "absent.db"), "name")
        assert code == 2
        assert "no store database" in text

    def test_reingest_is_noop(self, stored, tmp_path):
        db, _ = stored
        corpus = db.parent / "corpus"
        code, text = run_cli(
            "segment-dir", str(corpus), "--store", str(db), "--json"
        )
        assert code == 0
        summary = json.loads(text)
        assert summary["store"]["sites"] == 0
        assert summary["store"]["unchanged"] == 2

    def test_store_json_pages_are_structured(self, stored, tmp_path):
        db, _ = stored
        corpus = db.parent / "corpus"
        code, text = run_cli(
            "segment-dir", str(corpus), "--store", str(db), "--json"
        )
        assert code == 0
        summary = json.loads(text)
        page = summary["sites"][0]["pages"][0]
        # With --store the JSON records take the service's structured
        # {"texts", "columns"} shape instead of display strings.
        assert set(page["records"][0]) == {"texts", "columns"}

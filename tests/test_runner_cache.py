"""Tests for the content-addressed stage cache (runner/cache.py)."""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import SegmentationPipeline
from repro.csp.segmenter import CspConfig
from repro.runner.cache import StageCache, fingerprint
from repro.sitegen.corpus import build_site


@dataclass(frozen=True)
class _Knobs:
    threshold: float = 0.5
    tags: frozenset = frozenset({"a", "b"})


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("x", 1, [2, 3]) == fingerprint("x", 1, [2, 3])

    def test_type_tags_distinguish_lookalikes(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint(None) != fingerprint("None")

    def test_container_shape_matters(self):
        assert fingerprint([1, 2]) != fingerprint([2, 1])
        assert fingerprint([1, 2]) != fingerprint([[1], [2]])

    def test_set_order_independent(self):
        # Iteration order of sets is hash-randomized across processes;
        # the fingerprint must not depend on it.
        assert fingerprint(frozenset("abcdef")) == fingerprint(
            frozenset("fedcba")
        )
        assert fingerprint({"x": 1, "y": 2}) == fingerprint({"y": 2, "x": 1})

    def test_dataclass_fields_matter(self):
        assert fingerprint(_Knobs()) == fingerprint(_Knobs())
        assert fingerprint(_Knobs()) != fingerprint(_Knobs(threshold=0.6))
        assert fingerprint(_Knobs()) != fingerprint(
            _Knobs(tags=frozenset({"a"}))
        )

    def test_pipeline_config_stable(self):
        assert fingerprint(PipelineConfig()) == fingerprint(PipelineConfig())

    def test_nested_config_change_changes_key(self):
        base = PipelineConfig()
        tweaked = PipelineConfig(csp=CspConfig(seed=999))
        assert fingerprint(base) != fingerprint(tweaked)


class TestStageCache:
    def test_miss_then_hit(self, tmp_path):
        cache = StageCache(tmp_path)
        calls = []
        value = cache.get_or_compute("s", ("k",), lambda: calls.append(1) or 42)
        assert value == 42 and calls == [1]
        again = cache.get_or_compute("s", ("k",), lambda: calls.append(2) or 43)
        assert again == 42 and calls == [1]  # no recompute
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_parts_different_entries(self, tmp_path):
        cache = StageCache(tmp_path)
        assert cache.get_or_compute("s", ("a",), lambda: "A") == "A"
        assert cache.get_or_compute("s", ("b",), lambda: "B") == "B"

    def test_stage_namespaces_are_disjoint(self, tmp_path):
        cache = StageCache(tmp_path)
        assert cache.get_or_compute("s1", ("k",), lambda: 1) == 1
        assert cache.get_or_compute("s2", ("k",), lambda: 2) == 2

    def test_corrupted_entry_detected_and_recomputed(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.get_or_compute("s", ("k",), lambda: {"v": 1})
        (entry,) = list((tmp_path / "s").rglob("*.bin"))
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte -> checksum mismatch
        entry.write_bytes(bytes(blob))

        fresh = StageCache(tmp_path)
        value = fresh.get_or_compute("s", ("k",), lambda: {"v": 2})
        # The damaged entry is never trusted: recomputed, not loaded.
        assert value == {"v": 2}
        assert fresh.stats.corrupt == 1 and fresh.stats.misses == 1
        # ...and the rewritten entry is healthy again.
        assert StageCache(tmp_path).get_or_compute(
            "s", ("k",), lambda: {"v": 3}
        ) == {"v": 2}

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.get_or_compute("s", ("k",), lambda: "value")
        (entry,) = list((tmp_path / "s").rglob("*.bin"))
        entry.write_bytes(entry.read_bytes()[:10])
        fresh = StageCache(tmp_path)
        assert fresh.get_or_compute("s", ("k",), lambda: "new") == "new"

    def test_store_failure_degrades_to_uncached(self, tmp_path):
        # A full or failing disk costs the cache entry, never the
        # computed value: get_or_compute still returns the result.
        cache = StageCache(tmp_path)

        def broken_store(stage, key, value):
            raise OSError(28, "No space left on device")

        cache.store = broken_store
        assert cache.get_or_compute("s", ("k",), lambda: "value") == "value"
        assert cache.stats.store_errors == 1
        # Nothing was written; the next call recomputes.
        fresh = StageCache(tmp_path)
        assert fresh.get_or_compute("s", ("k",), lambda: "again") == "again"


class TestEviction:
    """Size-bounded (``max_bytes``) LRU behavior."""

    @staticmethod
    def _age(cache, stage, key, age_s):
        """Backdate an entry's mtime so LRU order is deterministic."""
        path = cache._path(stage, key)
        stamp = path.stat().st_mtime - age_s
        os.utime(path, (stamp, stamp))

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            StageCache(tmp_path, max_bytes=0)
        StageCache(tmp_path, max_bytes=1)  # minimum accepted

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = StageCache(tmp_path)
        for index in range(20):
            cache.store("s", cache.key("s", (index,)), b"x" * 512)
        assert len(cache._entries()) == 20
        assert cache.stats.evictions == 0

    def test_oldest_entries_evicted_first(self, tmp_path):
        # Entries are ~560 bytes each (checksum + pickled payload);
        # a 2000-byte budget holds three of them.
        cache = StageCache(tmp_path, max_bytes=2000)
        keys = [cache.key("s", (index,)) for index in range(4)]
        for age, key in zip((30, 20, 10), keys[:3]):
            cache.store("s", key, b"x" * 512)
            self._age(cache, "s", key, age)
        cache.store("s", keys[3], b"x" * 512)
        found = [cache.load("s", key)[0] for key in keys]
        # keys[0] (the oldest) was evicted to make room for keys[3].
        assert found == [False, True, True, True]
        assert cache.stats.evictions == 1
        assert cache.total_bytes() <= 2000

    def test_hit_refreshes_recency(self, tmp_path):
        cache = StageCache(tmp_path, max_bytes=2000)
        keys = [cache.key("s", (index,)) for index in range(4)]
        for age, key in zip((30, 20, 10), keys[:3]):
            cache.store("s", key, b"x" * 512)
            self._age(cache, "s", key, age)
        # Touch the oldest entry: the load bumps its mtime, so the
        # next eviction takes keys[1] instead.
        assert cache.load("s", keys[0]) == (True, b"x" * 512)
        cache.store("s", keys[3], b"x" * 512)
        found = [cache.load("s", key)[0] for key in keys]
        assert found == [True, False, True, True]

    def test_budget_smaller_than_one_entry(self, tmp_path):
        cache = StageCache(tmp_path, max_bytes=64)
        key = cache.key("s", ("big",))
        cache.store("s", key, b"x" * 4096)
        # Even the just-written entry goes when it alone busts the
        # budget: a bounded cache never grows past its bound.
        assert cache.load("s", key) == (False, None)
        assert cache.stats.evictions == 1

    def test_evictions_metric_booked(self, tmp_path):
        from repro.obs import MetricsRegistry, Observability

        metrics = MetricsRegistry()
        cache = StageCache(
            tmp_path,
            obs=Observability(metrics=metrics, keep_spans=False),
            max_bytes=1200,
        )
        for index in range(4):
            cache.store("s", cache.key("s", (index,)), b"x" * 512)
        counters = metrics.as_dict()["counters"]
        assert counters["runner.cache.evictions"] == cache.stats.evictions
        assert cache.stats.evictions >= 2

    def test_get_or_compute_respects_budget(self, tmp_path):
        cache = StageCache(tmp_path, max_bytes=2000)
        for index in range(10):
            cache.get_or_compute("s", (index,), lambda: b"x" * 512)
        assert cache.total_bytes() <= 2000
        assert cache.stats.evictions > 0


class TestPipelineCaching:
    @pytest.fixture()
    def site(self):
        return build_site("lee")

    def _run(self, site, cache):
        pipeline = SegmentationPipeline("csp", cache=cache)
        details = [
            site.detail_pages(i) for i in range(len(site.list_pages))
        ]
        return pipeline.segment_site(site.list_pages, details)

    @staticmethod
    def _content(run):
        return [
            (
                page_run.page.url,
                [str(r) for r in page_run.segmentation.records],
                [
                    o.extract.text
                    for o in page_run.segmentation.unassigned
                ],
                dict(page_run.segmentation.meta),
            )
            for page_run in run.pages
        ]

    def test_cold_and_warm_runs_identical(self, tmp_path, site):
        cold = self._run(site, StageCache(tmp_path))
        warm_cache = StageCache(tmp_path)
        warm = self._run(site, warm_cache)
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits > 0
        assert self._content(cold) == self._content(warm)
        # Byte-identical content fingerprints, not just equal shapes.
        assert fingerprint(self._content(cold)) == fingerprint(
            self._content(warm)
        )

    def test_page_mutation_changes_keys(self, tmp_path, site):
        cache = StageCache(tmp_path)
        self._run(site, cache)
        mutated = build_site("lee")
        mutated.list_pages[0].html += "<!-- one byte more -->"
        mutated.list_pages[0].invalidate_cache()
        second = StageCache(tmp_path)
        self._run(mutated, second)
        # Page-0 stages recompute; page-1's extracts may still hit.
        assert second.stats.misses > 0

    def test_method_config_sweep_reuses_upstream(self, tmp_path, site):
        self._run(site, StageCache(tmp_path))
        sweep_cache = StageCache(tmp_path)
        pipeline = SegmentationPipeline(
            "csp",
            PipelineConfig(csp=CspConfig(seed=7)),
            cache=sweep_cache,
        )
        details = [
            site.detail_pages(i) for i in range(len(site.list_pages))
        ]
        pipeline.segment_site(site.list_pages, details)
        # Template / extracts / observations hit; only the
        # segmentation stage (whose config changed) recomputes.
        assert sweep_cache.stats.hits > 0
        assert 0 < sweep_cache.stats.misses <= len(site.list_pages)

"""Tests for the end-to-end probabilistic segmenter."""

from __future__ import annotations

import pytest

from repro.core.exceptions import EmptyProblemError
from repro.extraction.observations import ObservationTable
from repro.prob.model import ProbConfig
from repro.prob.segmenter import ProbabilisticSegmenter
from tests.conftest import PAPER_TABLE2, build_observation_table


class TestSegmenter:
    def test_paper_example(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        got = {
            record.record_id: sorted(record.assigned_seqs)
            for record in segmentation.records
        }
        assert got == PAPER_TABLE2

    def test_never_partial(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        assert not segmentation.is_partial

    def test_columns_strictly_increase_within_record(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        for record in segmentation.records:
            assert record.columns is not None
            columns = [
                record.columns[o.seq] for o in record.observations
            ]
            assert all(a < b for a, b in zip(columns, columns[1:]))

    def test_records_start_at_column_zero(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        for record in segmentation.records:
            first = record.observations[0]
            assert record.columns[first.seq] == 0

    def test_no_period_variant(self, paper_table):
        config = ProbConfig(use_period=False)
        segmentation = ProbabilisticSegmenter(config).segment(paper_table)
        got = {
            record.record_id: sorted(record.assigned_seqs)
            for record in segmentation.records
        }
        assert got == PAPER_TABLE2
        assert segmentation.meta["use_period"] is False

    def test_meta_diagnostics(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        meta = segmentation.meta
        assert meta["k"] == 6
        assert meta["em_iterations"] >= 1
        assert meta["d_violations"] == 0
        assert meta["period_mode"] == 4
        assert meta["lattice_states"] > 0

    def test_tolerates_wrong_d_evidence(self):
        # An extract whose only match is a far, wrong detail page: the
        # model should pay epsilon instead of honoring it (the paper's
        # robustness claim), keeping neighbours intact.
        data = [
            ("Ada Lane", {0: (10,)}),
            ("88-321", {0: (20,)}),
            ("Stray", {3: (99,)}),      # truthfully in record 1
            ("77-654", {1: (20,)}),
            ("Cy Voss", {2: (10,)}),
            ("66-987", {2: (20,)}),
            ("Di Webb", {3: (10,)}),
            ("55-111", {3: (20,)}),
        ]
        table = build_observation_table(data, detail_count=4)
        segmentation = ProbabilisticSegmenter().segment(table)
        # Every observation is somewhere, and the four anchored pairs
        # stay in their own records.
        by_record = {
            record.record_id: sorted(record.assigned_seqs)
            for record in segmentation.records
        }
        assert by_record[0][:2] == [0, 1]
        assert [s for s in by_record.get(2, [])] == [4, 5]
        assert segmentation.meta["d_violations"] >= 1

    def test_empty_table_raises(self):
        table = ObservationTable(extracts=[], observations=[], detail_count=2)
        with pytest.raises(EmptyProblemError):
            ProbabilisticSegmenter().segment(table)

    def test_deterministic(self, paper_table):
        first = ProbabilisticSegmenter().segment(paper_table)
        second = ProbabilisticSegmenter().segment(paper_table)
        assert [sorted(r.assigned_seqs) for r in first.records] == [
            sorted(r.assigned_seqs) for r in second.records
        ]

    def test_fit_returns_model(self, paper_table):
        params, lattice = ProbabilisticSegmenter().fit(paper_table)
        assert params.k == lattice.k
        assert params.period.shape == (lattice.k + 1,)

    def test_single_record_table(self):
        data = [("Solo Act", {0: (5,)}), ("99-000", {0: (9,)})]
        table = build_observation_table(data, detail_count=1)
        segmentation = ProbabilisticSegmenter().segment(table)
        assert len(segmentation.records) == 1
        assert sorted(segmentation.records[0].assigned_seqs) == [0, 1]

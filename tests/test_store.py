"""Tests for the on-disk page sample format and its CLI commands."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.corpus import build_site
from repro.webdoc.store import SampleError, load_sample, save_sample


@pytest.fixture
def exported(tmp_path):
    site = build_site("lee")
    save_sample(
        tmp_path,
        "lee",
        site.list_pages,
        [site.detail_pages(0), site.detail_pages(1)],
    )
    return site, tmp_path


class TestRoundTrip:
    def test_manifest_written(self, exported):
        _, directory = exported
        manifest = json.loads((directory / "sample.json").read_text())
        assert manifest["name"] == "lee"
        assert len(manifest["pages"]) == 2
        assert len(manifest["pages"][0]["details"]) == 16

    def test_pages_round_trip_byte_identical(self, exported):
        site, directory = exported
        sample = load_sample(directory)
        assert sample.name == "lee"
        assert sample.list_pages[0].html == site.list_pages[0].html
        assert (
            sample.detail_pages_per_list[1][2].html
            == site.detail_pages(1)[2].html
        )

    def test_pipeline_on_loaded_sample_matches_direct_run(self, exported):
        site, directory = exported
        sample = load_sample(directory)
        loaded_run = SegmentationPipeline("csp").segment_site(
            sample.list_pages, sample.detail_pages_per_list
        )
        for page_run, truth in zip(loaded_run.pages, site.truth):
            score = score_page(page_run.segmentation, truth)
            assert score.cor == len(truth.rows)


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SampleError):
            load_sample(tmp_path)

    def test_malformed_manifest(self, tmp_path):
        (tmp_path / "sample.json").write_text("{not json")
        with pytest.raises(SampleError):
            load_sample(tmp_path)

    def test_empty_pages(self, tmp_path):
        (tmp_path / "sample.json").write_text(json.dumps({"pages": []}))
        with pytest.raises(SampleError):
            load_sample(tmp_path)

    def test_missing_referenced_file(self, tmp_path):
        (tmp_path / "sample.json").write_text(
            json.dumps(
                {"name": "x", "pages": [{"list": "gone.html", "details": []}]}
            )
        )
        with pytest.raises(SampleError):
            load_sample(tmp_path)

    def test_entry_missing_keys(self, tmp_path):
        (tmp_path / "sample.json").write_text(
            json.dumps({"name": "x", "pages": [{"list": "a.html"}]})
        )
        (tmp_path / "a.html").write_text("<html></html>")
        with pytest.raises(SampleError):
            load_sample(tmp_path)


class TestCliIntegration:
    def test_export_then_segment_dir(self, tmp_path):
        out = io.StringIO()
        code = main(["export", "butler", str(tmp_path)], out=out)
        assert code == 0
        assert "sample.json" in out.getvalue()

        out = io.StringIO()
        code = main(
            ["segment-dir", str(tmp_path), "--method", "csp"], out=out
        )
        assert code == 0
        assert "15 records" in out.getvalue()

"""Tests for relational reconstruction: tables, CSP columns, merging."""

from __future__ import annotations

import pytest

from repro.core.pipeline import SegmentationPipeline
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.relational.csp_columns import CspColumnAssigner
from repro.relational.detail_fields import detail_field_pairs
from repro.relational.evaluation import column_purity
from repro.relational.table_builder import build_table
from repro.sitegen.corpus import build_site


@pytest.fixture(scope="module")
def allegheny_run():
    site = build_site("allegheny")
    run = SegmentationPipeline("prob").segment_generated_site(site)
    return site, run


class TestBuildTable:
    def test_paper_example_table(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        table = build_table(segmentation)
        assert table.shape[0] == 3
        assert table.rows[0]["L0"] == "John Smith"
        assert table.rows[2]["L0"] == "George W. Smith"

    def test_missing_fields_leave_empty_cells(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        table = build_table(segmentation)
        # Record 2 has only 3 fields over a 4-column schema: some
        # column is absent from its row.
        row = table.rows[2]
        filled = [name for name in table.columns if name in row]
        assert len(filled) == 3

    def test_render_contains_cells(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        rendered = build_table(segmentation).render()
        assert "John Smith" in rendered
        assert "_record" in rendered

    def test_column_override(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        override = {
            observation.seq: 0
            for record in segmentation.records
            for observation in record.observations
        }
        table = build_table(segmentation, columns=override)
        assert table.columns == ["L0"]
        # Collisions are joined visibly.
        assert " / " in table.rows[0]["L0"]

    def test_column_values(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        table = build_table(segmentation)
        names = table.column_values("L0")
        assert len(names) == 3


class TestDetailFields:
    def test_labels_and_values_parsed(self, allegheny_run):
        site, _ = allegheny_run
        fields = detail_field_pairs(site.detail_pages(0))
        truth = site.truth[0]
        row = truth.rows[0]
        attributes = fields[0]
        assert attributes["Owner"] == row.values["owner"]
        assert attributes["Parcel ID"] == row.values["parcel"]

    def test_single_page_has_no_labels(self, allegheny_run):
        site, _ = allegheny_run
        fields = detail_field_pairs(site.detail_pages(0)[:1])
        assert fields[0] == {}

    def test_merge_into_relational_table(self, allegheny_run):
        site, run = allegheny_run
        table = build_table(run.pages[0].segmentation)
        fields = detail_field_pairs(site.detail_pages(0))
        table.merge_detail_fields(fields)
        assert "Owner" in table.columns
        assert table.rows[0]["Owner"] == site.truth[0].rows[0].values["owner"]

    def test_merge_does_not_overwrite(self, allegheny_run):
        site, run = allegheny_run
        table = build_table(run.pages[0].segmentation)
        original = dict(table.rows[0])
        table.merge_detail_fields({0: {"L0": "OVERWRITTEN"}})
        assert table.rows[0]["L0"] == original["L0"]


class TestColumnPurity:
    def test_prob_columns_pure_on_clean_site(self, allegheny_run):
        site, run = allegheny_run
        score = column_purity(run.pages[0].segmentation, site.truth[0])
        assert score.purity >= 0.95
        assert score.fields == 5

    def test_positional_fallback(self, allegheny_run):
        site, _ = allegheny_run
        run = SegmentationPipeline("csp").segment_generated_site(site)
        score = column_purity(run.pages[0].segmentation, site.truth[0])
        # Positional columns drift on records with missing fields but
        # stay mostly pure.
        assert score.purity >= 0.8

    def test_empty_segmentation(self, paper_table):
        from repro.core.results import Segmentation
        from repro.sitegen.site import ListPageTruth

        empty = Segmentation(method="x", records=[], table=paper_table)
        score = column_purity(empty, ListPageTruth(page_index=0, rows=()))
        assert score.purity == 0.0 and score.cells == 0


class TestCspColumnAssigner:
    def test_assignment_total_and_increasing(self, allegheny_run):
        site, _ = allegheny_run
        run = SegmentationPipeline("csp").segment_generated_site(site)
        segmentation = run.pages[0].segmentation
        columns = CspColumnAssigner().assign(segmentation)
        for record in segmentation.records:
            labels = [columns[o.seq] for o in record.observations]
            assert all(a < b for a, b in zip(labels, labels[1:]))
            assert labels[0] == 0
        assert len(columns) == sum(
            len(r.observations) for r in segmentation.records
        )

    def test_purity_beats_positional_on_missing_fields(self, allegheny_run):
        site, _ = allegheny_run
        run = SegmentationPipeline("csp").segment_generated_site(site)
        segmentation = run.pages[0].segmentation
        csp_columns = CspColumnAssigner().assign(segmentation)
        csp_score = column_purity(
            segmentation, site.truth[0], columns=csp_columns
        )
        positional_score = column_purity(segmentation, site.truth[0])
        assert csp_score.purity >= positional_score.purity

    def test_empty_segmentation(self, paper_table):
        from repro.core.results import Segmentation

        empty = Segmentation(method="x", records=[], table=paper_table)
        assert CspColumnAssigner().assign(empty) == {}


class TestColumnNaming:
    """Semantic names recovered from detail labels (Section 3.4)."""

    def make_named_table(self, allegheny_run):
        from repro.relational.naming import apply_column_names, name_columns

        site, run = allegheny_run
        table = build_table(run.pages[0].segmentation)
        fields = detail_field_pairs(site.detail_pages(0))
        names = name_columns(table, fields)
        return site, table, fields, names

    def test_anchor_columns_named_correctly(self, allegheny_run):
        _, _, _, names = self.make_named_table(allegheny_run)
        assert names.get("L0") == "Parcel ID"
        assert names.get("L1") == "Owner"
        assert names.get("L4") == "Assessed Value"

    def test_no_label_assigned_twice(self, allegheny_run):
        _, _, _, names = self.make_named_table(allegheny_run)
        labels = list(names.values())
        assert len(labels) == len(set(labels))

    def test_apply_renames_in_place(self, allegheny_run):
        from repro.relational.naming import apply_column_names

        site, table, fields, names = self.make_named_table(allegheny_run)
        apply_column_names(table, names)
        assert "Parcel ID" in table.columns
        assert table.rows[0]["Parcel ID"] == site.truth[0].rows[0].values["parcel"]

    def test_naming_is_conservative_without_support(self, allegheny_run):
        from repro.relational.naming import name_columns

        _, run = allegheny_run
        table = build_table(run.pages[0].segmentation)
        # Garbage detail fields: nothing should be named.
        garbage = {i: {"Junk": "zzz-never-matches"} for i in range(25)}
        assert name_columns(table, garbage) == {}

    def test_label_fraction_handles_missing_fields(self, allegheny_run):
        site, _ = allegheny_run
        fields = detail_field_pairs(site.detail_pages(0))
        # "Municipality" is missing from ~10% of detail pages (the
        # citystate missing_rate) but is still detected as a label.
        labels = set()
        for attributes in fields.values():
            labels.update(attributes)
        assert "Municipality" in labels


class TestNamingDeterminism:
    """Tie-breaks in name_columns are content-pure (PR 8 regression).

    Before the fix, a vote tie fell to ``Counter.most_common`` order
    (detail-extract insertion order) and a support tie to tuple sort
    on ``(support, column, label)`` — both functions of ingest order,
    so the same table named its columns differently across sites that
    listed the same labels in a different order.
    """

    @staticmethod
    def _tied_table():
        from repro.relational.table_builder import RelationalTable

        return RelationalTable(
            columns=["L0"],
            rows=[{"_record": "0", "L0": "same-text"}],
        )

    def test_vote_tie_breaks_to_smaller_label(self):
        from repro.relational.naming import name_columns

        table = self._tied_table()
        # Both labels agree exactly with the one cell: a perfect tie.
        fields = {0: {"zebra": "same-text", "apple": "same-text"}}
        assert name_columns(table, fields) == {"L0": "apple"}

    def test_vote_tie_independent_of_label_order(self):
        from repro.relational.naming import name_columns

        table = self._tied_table()
        forward = {0: {"apple": "same-text", "zebra": "same-text"}}
        backward = {0: {"zebra": "same-text", "apple": "same-text"}}
        assert name_columns(table, forward) == name_columns(table, backward)

    def test_support_tie_prefers_earlier_column(self):
        from repro.relational.naming import name_columns
        from repro.relational.table_builder import RelationalTable

        # Two columns, each a perfect match for the same label: the
        # earlier column must win the contested label every time.
        table = RelationalTable(
            columns=["L0", "L1"],
            rows=[{"_record": "0", "L0": "alpha", "L1": "alpha"}],
        )
        fields = {0: {"Name": "alpha"}}
        assert name_columns(table, fields) == {"L0": "Name"}

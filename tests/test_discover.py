"""Tests for entry-point navigation: index pages, Next chains,
site discovery, and the continuous-numbering repair."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.exceptions import CrawlError
from repro.core.pipeline import SegmentationPipeline
from repro.crawl import (
    SiteFetcher,
    discover_site,
    extract_links_with_text,
    follow_next_chain,
)
from repro.sitegen.corpus import build_site
from repro.sitegen.domains.books import build_amazon
from repro.sitegen.site import GeneratedSite
from repro.template.finder import TemplateFinder
from repro.webdoc.page import Page


class TestLinkText:
    def test_pairs_in_order(self):
        html = '<a href="a.html">First</a> x <a href="b.html">Second one</a>'
        assert extract_links_with_text(html) == [
            ("a.html", "First"),
            ("b.html", "Second one"),
        ]

    def test_nested_markup_inside_anchor(self):
        html = '<a href="a.html"><b>Bold</b> text</a>'
        assert extract_links_with_text(html) == [("a.html", "Bold text")]

    def test_duplicates_kept(self):
        html = '<a href="a.html">x</a><a href="a.html">y</a>'
        assert len(extract_links_with_text(html)) == 2

    def test_exact_duplicate_pairs_collapse(self):
        html = '<a href="a.html">x</a><a href="a.html">x</a>'
        assert extract_links_with_text(html) == [("a.html", "x")]

    def test_nested_anchor_implicitly_closes_outer(self):
        # Broken markup: a second <a> opens before the first closed.
        # The outer anchor is emitted with the text seen so far, then
        # the inner anchor is tracked normally.
        html = '<a href="outer.html">Out <a href="inner.html">In</a>'
        assert extract_links_with_text(html) == [
            ("outer.html", "Out"),
            ("inner.html", "In"),
        ]

    def test_unclosed_anchor_at_eof_is_emitted(self):
        html = '<a href="last.html">Last entry'
        assert extract_links_with_text(html) == [("last.html", "Last entry")]

    def test_fragment_and_empty_hrefs_skipped(self):
        html = (
            '<a href="#top">Top</a><a href="">Blank</a>'
            '<a href="real.html">Real</a>'
        )
        assert extract_links_with_text(html) == [("real.html", "Real")]

    def test_empty_text_anchors_skipped(self):
        html = '<a href="icon.html"></a><a href="real.html">Real</a>'
        assert extract_links_with_text(html) == [("real.html", "Real")]


class TestSiteChrome:
    def test_index_page_exists_with_form(self):
        site = build_site("butler")
        index = site.fetch("butler-index.html")
        assert "<form" in index.html
        assert "sample search" in index.html

    def test_next_previous_chain(self):
        site = build_site("butler")
        first, second = site.list_pages
        assert 'Next' in first.html and 'Previous' not in first.html
        assert 'Previous' in second.html and 'Next' not in second.html


class TestFollowNextChain:
    def test_walks_the_chain(self):
        site = build_site("butler")
        fetcher = SiteFetcher(site)
        chain = follow_next_chain(fetcher, site.list_pages[0])
        assert [page.url for page in chain] == [
            "butler-list0.html",
            "butler-list1.html",
        ]

    def test_stops_without_next(self):
        site = build_site("butler")
        fetcher = SiteFetcher(site)
        chain = follow_next_chain(fetcher, site.list_pages[1])
        assert len(chain) == 1

    def test_max_pages_cap(self):
        site = build_site("butler")
        fetcher = SiteFetcher(site)
        chain = follow_next_chain(fetcher, site.list_pages[0], max_pages=1)
        assert len(chain) == 1


class TestDiscoverSite:
    @pytest.mark.parametrize("name", ["lee", "ohio", "superpages"])
    def test_discovers_pipeline_inputs(self, name):
        site = build_site(name)
        fetcher = SiteFetcher(site)
        found = discover_site(fetcher, f"{name}-index.html")
        assert [page.url for page in found.list_pages] == [
            page.url for page in site.list_pages
        ]
        for page_index, details in enumerate(found.detail_pages_per_list):
            assert [page.url for page in details] == [
                page.url for page in site.detail_pages(page_index)
            ]

    def test_discovered_inputs_segment_identically(self):
        site = build_site("butler")
        found = discover_site(SiteFetcher(site), "butler-index.html")
        run = SegmentationPipeline("csp").segment_site(
            found.list_pages, found.detail_pages_per_list
        )
        direct = SegmentationPipeline("csp").segment_generated_site(site)
        for via_discovery, via_truth in zip(run.pages, direct.pages):
            assert (
                via_discovery.segmentation.record_count
                == via_truth.segmentation.record_count
            )

    def test_dead_entry_raises(self):
        site = build_site("butler")
        fetcher = SiteFetcher(site)
        lonely = Page(
            "lonely-index.html",
            '<a href="nowhere.html">only dead link</a>',
        )
        site._by_url["lonely-index.html"] = lonely
        with pytest.raises(CrawlError):
            discover_site(fetcher, "lonely-index.html")


class TestContinuousNumbering:
    """The paper's Next-link template repair (Section 6.2)."""

    def test_restarting_numbers_break_the_template(self):
        site = GeneratedSite(build_amazon())
        assert not TemplateFinder().find(site.list_pages).ok

    def test_continuous_numbers_repair_it(self):
        spec = dataclasses.replace(build_amazon(), numbering_continuous=True)
        site = GeneratedSite(spec)
        verdict = TemplateFinder().find(site.list_pages)
        assert verdict.ok
        # Page 2 actually counts onward.
        assert ">11.<" in site.list_pages[1].html

    def test_default_is_paper_faithful(self):
        assert build_amazon().numbering_continuous is False

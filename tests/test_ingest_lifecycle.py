"""Tests for the live crawl lifecycle (fetch -> diff -> invalidate).

Covers the three new layers end to end: fetch-driven ingestion over a
:class:`~repro.crawl.fetcher.DirectorySite` (resilient fetcher, crawl
snapshots with a round-trippable ``crawl.json`` manifest), incremental
re-ingest (fingerprint diff, carried-bundle byte identity, stale-bundle
blast radius), and cross-layer invalidation (relational store rows and
cached wrappers for stale sites provably gone).
"""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import FetchError
from repro.crawl.fetcher import DirectorySite
from repro.ingest import (
    CRAWL_SNAPSHOT_NAME,
    diff_fingerprints,
    fetch_crawl,
    ingest_pages,
    load_previous_manifest,
    load_snapshot,
    page_fingerprint,
    plan_reingest,
    reingest_pages,
    write_bundles,
    write_reingest,
    write_snapshot,
)
from repro.lifecycle import invalidate_consumers
from repro.obs import Observability
from repro.sitegen.corpus import build_site
from repro.sitegen.mixed import MixedCorpusSpec, build_mixed_corpus
from repro.webdoc.page import Page


class TestDirectorySite:
    @pytest.fixture()
    def site_dir(self, tmp_path):
        (tmp_path / "a.html").write_text("<html>A</html>", encoding="utf-8")
        (tmp_path / "b.html").write_text("<html>B</html>", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not html", encoding="utf-8")
        return tmp_path

    def test_serves_pages(self, site_dir):
        site = DirectorySite(site_dir)
        page = site.fetch("a.html")
        assert page.url == "a.html"
        assert page.html == "<html>A</html>"

    def test_urls_sorted_html_only(self, site_dir):
        assert DirectorySite(site_dir).urls() == ["a.html", "b.html"]

    def test_missing_page_is_fetch_error(self, site_dir):
        with pytest.raises(FetchError):
            DirectorySite(site_dir).fetch("missing.html")

    @pytest.mark.parametrize(
        "url",
        ["", "  ", "../a.html", "sub/a.html", ".hidden.html", "notes.txt"],
    )
    def test_unsafe_urls_rejected(self, site_dir, url):
        with pytest.raises(FetchError):
            DirectorySite(site_dir).fetch(url)


class TestFetchCrawl:
    def test_walks_generated_site_from_seed(self):
        site = build_site("ohio")
        crawl = fetch_crawl(site, ["ohio-index.html"])
        assert crawl.seeds == ("ohio-index.html",)
        assert crawl.page_count > 10
        # BFS: the seed is the first fetched page.
        assert crawl.pages[0].url == "ohio-index.html"
        # Every fetched page has a content fingerprint.
        assert set(crawl.fingerprints) == {p.url for p in crawl.pages}
        for page in crawl.pages:
            assert crawl.fingerprints[page.url] == page_fingerprint(
                page.html
            )

    def test_dead_links_become_gaps_not_exceptions(self):
        crawl = fetch_crawl(build_site("ohio"), ["ohio-index.html"])
        # Generated sites carry dead decoy links (e.g. form actions).
        assert crawl.health.gap_count > 0
        gap_urls = set(crawl.health.gaps)
        assert gap_urls.isdisjoint({p.url for p in crawl.pages})

    def test_unreachable_seed_yields_empty_crawl(self, tmp_path):
        crawl = fetch_crawl(DirectorySite(tmp_path), ["nope.html"])
        assert crawl.pages == []
        assert crawl.health.gap_count == 1

    def test_max_pages_caps_discovery(self):
        crawl = fetch_crawl(
            build_site("ohio"), ["ohio-index.html"], max_pages=3
        )
        assert crawl.page_count == 3
        assert crawl.health.budget_exhausted is True

    def test_counters_booked(self):
        obs = Observability()
        crawl = fetch_crawl(build_site("ohio"), ["ohio-index.html"], obs=obs)
        counters = obs.metrics.as_dict()["counters"]
        assert counters["ingest.fetch.pages"] == crawl.page_count
        assert counters["ingest.fetch.gaps"] == crawl.health.gap_count


class TestSnapshotRoundTrip:
    def test_order_fingerprints_and_health_survive(self, tmp_path):
        crawl = fetch_crawl(build_site("ohio"), ["ohio-index.html"])
        manifest = write_snapshot(crawl, tmp_path / "snap")
        assert manifest.name == CRAWL_SNAPSHOT_NAME

        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.seeds == crawl.seeds
        assert [p.url for p in loaded.pages] == [
            p.url for p in crawl.pages
        ]
        assert [p.html for p in loaded.pages] == [
            p.html for p in crawl.pages
        ]
        assert loaded.fingerprints == crawl.fingerprints
        assert loaded.health.requests == crawl.health.requests
        assert loaded.health.as_dict() == crawl.health.as_dict()

    def test_manifest_is_deterministic_lf_only(self, tmp_path):
        crawl = fetch_crawl(build_site("ohio"), ["ohio-index.html"])
        first = write_snapshot(crawl, tmp_path / "one").read_bytes()
        second = write_snapshot(crawl, tmp_path / "two").read_bytes()
        assert first == second
        assert b"\r" not in first

    def test_snapshot_feeds_directory_site(self, tmp_path):
        # A snapshot is itself fetchable: replaying it through a
        # DirectorySite reproduces the crawl byte-identically.
        crawl = fetch_crawl(build_site("ohio"), ["ohio-index.html"])
        write_snapshot(crawl, tmp_path / "snap")
        replay = fetch_crawl(
            DirectorySite(tmp_path / "snap"), ["ohio-index.html"]
        )
        assert replay.fingerprints == crawl.fingerprints

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_snapshot(tmp_path)


class TestDiff:
    def test_diff_fingerprints_partitions(self):
        previous = {"a": "1", "b": "2", "c": "3"}
        fresh = {"a": "1", "b": "9", "d": "4"}
        diff = diff_fingerprints(previous, fresh)
        assert diff.unchanged == ("a",)
        assert diff.changed == ("b",)
        assert diff.added == ("d",)
        assert diff.removed == ("c",)
        assert diff.counts() == {
            "unchanged": 1,
            "changed": 1,
            "added": 1,
            "removed": 1,
        }
        assert diff.dirty == frozenset({"b", "d"})

    def test_plan_scopes_to_stale_bundles(self):
        pages = [
            Page(url="x-list0.html", html="<a href='x-d0.html'>x</a>"),
            Page(url="x-d0.html", html="detail CHANGED"),
            Page(url="y-list0.html", html="<a href='y-d0.html'>y</a>"),
            Page(url="y-d0.html", html="detail y"),
        ]
        fingerprints = {p.url: page_fingerprint(p.html) for p in pages}
        previous_fps = dict(fingerprints)
        previous_fps["x-d0.html"] = page_fingerprint("detail OLD")
        previous = {
            "fingerprints": previous_fps,
            "bundles": [
                {"name": "x", "pages": ["x-list0.html", "x-d0.html"]},
                {"name": "y", "pages": ["y-list0.html", "y-d0.html"]},
            ],
            "quarantine": [],
        }
        plan = plan_reingest(previous, pages, fingerprints)
        assert plan.diff.changed == ("x-d0.html",)
        assert plan.stale_bundles == ["x"]
        # Only bundle x's pages re-ingest; bundle y rides through.
        assert set(plan.reingest_urls) == {"x-list0.html", "x-d0.html"}
        assert [entry["name"] for entry in plan.carried] == ["y"]

    def test_load_previous_manifest_rejects_pre_lifecycle(self, tmp_path):
        assert load_previous_manifest(tmp_path) is None
        manifest = tmp_path / "ingest_manifest.json"
        manifest.write_text("{not json", encoding="utf-8")
        assert load_previous_manifest(tmp_path) is None
        # A pre-lifecycle manifest (no fingerprints) forces full ingest.
        manifest.write_text(
            json.dumps({"bundles": [{"name": "x"}]}), encoding="utf-8"
        )
        assert load_previous_manifest(tmp_path) is None


class TestIncrementalReingest:
    SPEC0 = MixedCorpusSpec(sites=12, seed=7)
    SPEC1 = MixedCorpusSpec(sites=12, seed=7, generation=1)

    @pytest.fixture(scope="class")
    def state(self, tmp_path_factory):
        """gen0 full ingest, gen1 incremental, gen1 full (reference)."""
        root = tmp_path_factory.mktemp("reingest")
        gen0 = build_mixed_corpus(self.SPEC0)
        gen1 = build_mixed_corpus(self.SPEC1)

        full0 = ingest_pages(gen0.pages)
        out = root / "bundles"
        write_bundles(full0, out)
        previous = load_previous_manifest(out)
        assert previous is not None

        obs = Observability()
        incremental = reingest_pages(
            gen1.pages, previous, obs=obs
        )
        write_reingest(incremental, out)

        reference = ingest_pages(gen1.pages)
        ref_dir = root / "reference"
        write_bundles(reference, ref_dir)

        return {
            "gen1": gen1,
            "out": out,
            "ref_dir": ref_dir,
            "incremental": incremental,
            "reference": reference,
            "obs": obs,
        }

    def test_reconciles_and_matches_full_ingest(self, state):
        incremental = state["incremental"]
        reference = state["reference"]
        assert incremental.reconciles()
        assert incremental.bundle_count == len(reference.bundles)
        # Same bundle names, same page membership as the full run.
        ref_bundles = {
            b.name: b.page_urls() for b in reference.bundles
        }
        inc_bundles = {
            entry["name"]: entry["pages"]
            for entry in incremental.carried
        }
        for bundle in incremental.report.bundles:
            inc_bundles[bundle.name] = bundle.page_urls()
        assert inc_bundles == ref_bundles

    def test_savings_are_real(self, state):
        incremental = state["incremental"]
        assert incremental.diff.counts()["unchanged"] > 0
        assert len(incremental.carried) > 0
        assert (
            incremental.reprocessed_page_count
            < incremental.page_count
        )

    def test_carried_bundle_dirs_byte_identical(self, state):
        # Carried directories must equal what a from-scratch gen1
        # ingest writes for the same bundles, file for file.
        out, ref_dir = state["out"], state["ref_dir"]
        carried = [e["name"] for e in state["incremental"].carried]
        assert carried
        for name in carried:
            ours = sorted((out / name).rglob("*"))
            theirs = sorted((ref_dir / name).rglob("*"))
            assert [p.name for p in ours] == [p.name for p in theirs]
            for mine, ref in zip(ours, theirs):
                if mine.is_file():
                    assert mine.read_bytes() == ref.read_bytes(), mine

    def test_removed_bundle_dir_deleted(self, state):
        incremental = state["incremental"]
        assert incremental.removed_bundles  # gen1 removes a sub-site
        for name in incremental.removed_bundles:
            assert not (state["out"] / name).exists()

    def test_diff_counters_booked(self, state):
        counters = state["obs"].metrics.as_dict()["counters"]
        diff = state["incremental"].diff.counts()
        for key in ("unchanged", "changed", "added", "removed"):
            assert counters[f"ingest.diff.{key}"] == diff[key]
        assert counters["ingest.carried.bundles"] == len(
            state["incremental"].carried
        )

    def test_manifest_chains_as_previous(self, state):
        # The merged manifest must itself be a valid diff base, so
        # generation 2 can re-ingest incrementally on top of it.
        previous = load_previous_manifest(state["out"])
        assert previous is not None
        gen1 = state["gen1"]
        again = reingest_pages(gen1.pages, previous)
        assert again.diff.counts()["unchanged"] == len(
            {p.url for p in gen1.pages}
        )
        assert again.reprocessed_page_count == 0
        assert again.reconciles()


class TestInvalidation:
    def _loaded_store(self, tmp_path):
        from repro.store import RelationalStore, ingest_pages as store_ingest

        store = RelationalStore(tmp_path / "tables.db")
        entry = {
            "url": "stale-list0.html",
            "records": [
                {"texts": ["Ann", "Fraud"], "columns": [0, 1]},
            ],
            "record_count": 1,
            "names": {"L0": "Name", "L1": "Charge"},
        }
        store_ingest(store, "stale-list0", "prob", [entry])
        store_ingest(store, "fresh-list0", "prob", [entry])
        return store

    def test_store_rows_removed(self, tmp_path):
        with self._loaded_store(tmp_path) as store:
            report = invalidate_consumers(["stale-list0"], store=store)
            assert report.store_sites_removed == 1
            assert report.store["sites"] == 1
            remaining = [row["site_id"] for row in store.sites()]
            assert remaining == ["fresh-list0"]

    def test_wrapper_disk_tier_dropped(self, tmp_path):
        from repro.core.config import METHODS
        from repro.runner.cache import StageCache
        from repro.serve.registry import WRAPPER_STAGE, WrapperRegistry

        cache = StageCache(tmp_path / "wc")
        registry = WrapperRegistry(cache=cache)
        for method in METHODS:
            cache.store(
                WRAPPER_STAGE,
                WrapperRegistry._key("stale-list0", method),
                {"fake": "wrapper"},
            )
        report = invalidate_consumers(["stale-list0"], registry=registry)
        assert report.wrappers_invalidated == len(METHODS)
        for method in METHODS:
            found, _ = cache.load(
                WRAPPER_STAGE, WrapperRegistry._key("stale-list0", method)
            )
            assert not found

    def test_memory_tier_dropped(self):
        from repro.serve.registry import WrapperRegistry

        registry = WrapperRegistry()
        registry._wrappers[("stale-list0", "prob")] = object()
        report = invalidate_consumers(["stale-list0"], registry=registry)
        assert report.wrappers_invalidated == 1
        assert len(registry) == 0

    def test_store_error_does_not_stop_wrappers(self, tmp_path):
        from repro.serve.registry import WrapperRegistry

        with self._loaded_store(tmp_path) as store:
            pass  # closed: every remove now raises StoreError
        registry = WrapperRegistry()
        registry._wrappers[("stale-list0", "prob")] = object()
        report = invalidate_consumers(
            ["stale-list0"], store=store, registry=registry
        )
        assert report.errors
        assert report.wrappers_invalidated == 1

    def test_unknown_site_is_noop(self, tmp_path):
        with self._loaded_store(tmp_path) as store:
            report = invalidate_consumers(["never-seen"], store=store)
            assert report.store_sites_removed == 0
            assert report.errors == []


class TestCliLifecycle:
    def test_incremental_json_reports_diff_and_invalidation(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        gen0, gen1 = tmp_path / "g0", tmp_path / "g1"
        out = tmp_path / "bundles"
        base = ["export-corpus", "--mixed", "4", "--seed", "11"]
        assert main(base[:1] + [str(gen0)] + base[1:]) == 0
        assert main(
            base[:1] + [str(gen1)] + base[1:] + ["--generation", "1"]
        ) == 0
        assert main(["ingest", str(gen0), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(
            [
                "ingest",
                str(gen1),
                "--out",
                str(out),
                "--incremental",
                "--json",
                "--store",
                str(tmp_path / "rel.db"),
                "--wrapper-cache-dir",
                str(tmp_path / "wc"),
            ]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["reconciled"] is True
        assert summary["diff"]["unchanged"] > 0
        assert summary["reprocessed"] < summary["pages"]
        assert summary["invalidation"]["errors"] == []
        assert summary["invalidation"]["sites"] == summary["stale_bundles"]

    def test_fetch_mode_threads_crawl_health(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sitegen.mixed import write_crawl

        corpus = build_mixed_corpus(MixedCorpusSpec(sites=3, seed=5))
        crawl_dir = tmp_path / "crawl"
        write_crawl(corpus, crawl_dir)
        seed = corpus.sites[0].list_urls[0]
        assert main(
            [
                "ingest",
                str(crawl_dir),
                "--out",
                str(tmp_path / "bundles"),
                "--fetch",
                seed,
                "--snapshot",
                str(tmp_path / "snap"),
                "--json",
            ]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["crawl_health"] is not None
        assert summary["crawl_health"]["requests"] > 0
        assert (tmp_path / "snap" / CRAWL_SNAPSHOT_NAME).is_file()

"""Tests for template induction, judging and table-slot resolution."""

from __future__ import annotations

import pytest

from repro.core.exceptions import InsufficientPagesError
from repro.template.finder import TemplateFinder, TemplateFinderConfig
from repro.template.table_slot import resolve_table_regions
from repro.webdoc.page import Page


def chrome_page(url, rows, numbered=False, extra_header=""):
    """A list-like page with enough chrome for a healthy template."""
    row_html = []
    for index, row in enumerate(rows):
        # Numbered entries sit in invariant markup context
        # (<b>N.</b> <a>), like the real sites' layouts.
        prefix = f"<b>{index + 1}.</b> " if numbered else ""
        first = f"<a href='detail{index}.html'>{row[0]}</a>"
        cells = "<br>".join([first] + row[1:])
        row_html.append(f"<p>{prefix}{cells}</p>")
    html = (
        "<html><head><title>Acme Online Directory</title></head><body>"
        "<h1>Acme</h1><a href='i.html'>Home</a> <a href='s.html'>Search Again</a>"
        f"{extra_header}"
        "<h2>Matching Listings</h2>"
        f"<p>Displaying {len(rows)} results for your query</p>"
        f"{''.join(row_html)}"
        "<p>Copyright 2004. All rights reserved.</p>"
        "</body></html>"
    )
    return Page(url=url, html=html, kind="list")


ROWS_A = [
    ["Quartz Holdings", "4811 Ridge Rd.", "740-221-8765"],
    ["Umber Café", "12 Lake St.", "740-990-1123"],
    ["Violet Systems", "77 Mill Ave.", "740-300-4587"],
]
ROWS_B = [
    ["Nimbus Labs", "900 Oak Dr.", "614-202-9931"],
    ["Kestrel Supply", "31 Elm Ct.", "614-476-1200"],
    ["Tern Optics", "5510 Pine Ln.", "614-889-7742"],
    ["Moss Gallery", "208 High St.", "614-154-3310"],
]


class TestFinder:
    def test_clean_pages_find_template(self):
        verdict = TemplateFinder().find(
            [chrome_page("a", ROWS_A), chrome_page("b", ROWS_B)]
        )
        assert verdict.ok
        texts = verdict.template.token_texts
        assert "Copyright" in texts
        # "Displaying" is context-pruned (its neighbour is the varying
        # result count), but the stable chrome words survive.
        assert "Matching" in texts and "Listings" in texts
        # No record data leaked into the template.
        assert "Quartz" not in texts and "Nimbus" not in texts

    def test_table_slot_contains_the_rows(self):
        pages = [chrome_page("a", ROWS_A), chrome_page("b", ROWS_B)]
        verdict = TemplateFinder().find(pages)
        regions = resolve_table_regions(pages, verdict)
        assert not regions[0].whole_page
        texts = [token.text for token in regions[0].tokens]
        assert "Quartz" in texts and "740-221-8765" in texts
        assert "Copyright" not in texts

    def test_numbered_entries_fragment_the_table(self):
        # "1."-"3." occur once per page on both pages and thread
        # through the data region; "4." exists only on page b.
        verdict = TemplateFinder().find(
            [
                chrome_page("a", ROWS_A, numbered=True),
                chrome_page("b", ROWS_B, numbered=True),
            ]
        )
        assert not verdict.ok
        assert "fragmented" in verdict.reason
        assert "1." in verdict.template.token_texts

    def test_whole_page_fallback_regions(self):
        pages = [
            chrome_page("a", ROWS_A, numbered=True),
            chrome_page("b", ROWS_B[:3], numbered=True),
        ]
        verdict = TemplateFinder().find(pages)
        regions = resolve_table_regions(pages, verdict)
        assert all(region.whole_page for region in regions)
        assert len(regions[0].tokens) == len(pages[0].tokens())

    def test_tags_only_template_rejected(self):
        # Two pages sharing only structure, no text.
        first = Page("a", "<html><body><p>alpha beta alpha beta</p></body></html>")
        second = Page("b", "<html><body><p>gamma delta gamma delta</p></body></html>")
        verdict = TemplateFinder().find([first, second])
        assert not verdict.ok
        assert "text tokens" in verdict.reason or "fewer" in verdict.reason

    def test_single_page_raises(self):
        with pytest.raises(InsufficientPagesError):
            TemplateFinder().find([chrome_page("a", ROWS_A)])

    def test_min_template_tokens_config(self):
        config = TemplateFinderConfig(min_template_tokens=10_000)
        verdict = TemplateFinder(config).find(
            [chrome_page("a", ROWS_A), chrome_page("b", ROWS_B)]
        )
        assert not verdict.ok

    def test_context_prune_drops_colliding_data_value(self):
        # "Findlay," occurs exactly once per page in varying context:
        # without pruning it would join the template mid-table.
        rows_a = [
            ["Ann Price", "Findlay, OH 45001", "740-111-2222"],
            ["Bob Stone", "Marion, OH 45002", "740-333-4444"],
        ]
        rows_b = [
            ["Cal Reed", "Findlay, OH 45003", "740-555-6666"],
            ["Dee Wu", "Lima, OH 45004", "740-777-8888"],
        ]
        verdict = TemplateFinder().find(
            [chrome_page("a", rows_a), chrome_page("b", rows_b)]
        )
        assert "Findlay," not in verdict.template.token_texts

    def test_context_prune_disabled_keeps_collisions(self):
        rows_a = [["Ann Price", "Findlay, OH 45001", "740-111-2222"]]
        rows_b = [["Cal Reed", "Findlay, OH 45003", "740-555-6666"]]
        config = TemplateFinderConfig(context_depth=0)
        verdict = TemplateFinder(config).find(
            [chrome_page("a", rows_a), chrome_page("b", rows_b)]
        )
        assert "Findlay," in verdict.template.token_texts


class TestTemplateModel:
    def make_verdict(self):
        pages = [chrome_page("a", ROWS_A), chrome_page("b", ROWS_B)]
        return pages, TemplateFinder().find(pages)

    def test_slots_cover_every_token_once(self):
        pages, verdict = self.make_verdict()
        template = verdict.template
        for page_index, page in enumerate(pages):
            slots = template.slots_for_page(page_index, page.tokens())
            slot_tokens = sum(len(slot.tokens) for slot in slots)
            assert slot_tokens + len(template.aligned) == len(page.tokens())

    def test_slot_count(self):
        pages, verdict = self.make_verdict()
        slots = verdict.template.slots_for_page(0, pages[0].tokens())
        assert len(slots) == len(verdict.template.aligned) + 1

    def test_slots_page_index_out_of_range(self):
        pages, verdict = self.make_verdict()
        with pytest.raises(IndexError):
            verdict.template.slots_for_page(5, pages[0].tokens())

    def test_locate_on_same_template_page(self):
        pages, verdict = self.make_verdict()
        third = chrome_page("c", [["Zinc Works", "8 Low Rd.", "614-000-1111"]])
        positions = verdict.template.locate(third.tokens())
        assert positions is not None
        assert positions == sorted(positions)

    def test_locate_fails_on_foreign_page(self):
        _, verdict = self.make_verdict()
        foreign = Page("f", "<html><body>totally unrelated words</body></html>")
        assert verdict.template.locate(foreign.tokens()) is None

    def test_coverage_bounds(self):
        pages, verdict = self.make_verdict()
        assert verdict.template.coverage(pages[0].tokens()) == 1.0
        foreign = Page("f", "<html><body>unrelated</body></html>")
        assert verdict.template.coverage(foreign.tokens()) < 0.5


class TestEnumerationHeuristic:
    """The paper's future-work fix for numbered entries (Section 6.2)."""

    def test_strip_repairs_numbered_pages(self):
        config = TemplateFinderConfig(strip_enumerations=True)
        verdict = TemplateFinder(config).find(
            [
                chrome_page("a", ROWS_A, numbered=True),
                chrome_page("b", ROWS_B, numbered=True),
            ]
        )
        assert verdict.ok
        assert "1." not in verdict.template.token_texts

    def test_default_stays_paper_faithful(self):
        assert TemplateFinderConfig().strip_enumerations is False

    def test_strip_leaves_clean_templates_alone(self):
        base = TemplateFinder().find(
            [chrome_page("a", ROWS_A), chrome_page("b", ROWS_B)]
        )
        stripped = TemplateFinder(
            TemplateFinderConfig(strip_enumerations=True)
        ).find([chrome_page("a", ROWS_A), chrome_page("b", ROWS_B)])
        assert stripped.ok
        # Only enumeration-shaped tokens may differ.
        removed = set(base.template.token_texts) - set(
            stripped.template.token_texts
        )
        import re

        assert all(re.fullmatch(r"\d{1,3}[.)]?", text) for text in removed)

    def test_numbered_corpus_sites_recover(self):
        from repro.sitegen.corpus import build_site

        config = TemplateFinderConfig(strip_enumerations=True)
        for name in ("amazon", "bnbooks"):
            site = build_site(name)
            verdict = TemplateFinder(config).find(site.list_pages)
            assert verdict.ok, f"{name}: {verdict.reason}"

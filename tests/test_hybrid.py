"""Tests for the combined (hybrid) segmenter."""

from __future__ import annotations

import pytest

from repro.core.exceptions import EmptyProblemError
from repro.core.hybrid import HybridConfig, HybridSegmenter
from repro.core.pipeline import SegmentationPipeline
from repro.core.evaluation import score_page
from repro.extraction.observations import ObservationTable
from repro.sitegen.corpus import build_site
from tests.conftest import PAPER_TABLE2, build_observation_table


class TestHybridSegmenter:
    def test_clean_data_uses_csp(self, paper_table):
        segmentation = HybridSegmenter().segment(paper_table)
        assert segmentation.meta["engine"] == "csp"
        assert segmentation.method == "hybrid"
        got = {
            record.record_id: sorted(record.assigned_seqs)
            for record in segmentation.records
        }
        assert got == PAPER_TABLE2

    def test_inconsistent_data_falls_to_prob(self):
        # The Michigan-style planted conflict: strict CSP unsat.
        table = build_observation_table(
            [
                ("Parole", {0: (99,)}),
                ("anchor-a", {0: (10,)}),
                ("Parole", {0: (99,)}),
                ("anchor-b", {1: (20,)}),
                ("Parole", {0: (99,)}),
            ],
            detail_count=2,
        )
        segmentation = HybridSegmenter().segment(table)
        assert segmentation.meta["engine"] == "prob"
        # Probabilistic output is never partial.
        assert not segmentation.is_partial
        # The CSP attempts are carried along for diagnosis.
        assert segmentation.meta["csp_attempts"]

    def test_empty_table_raises(self):
        table = ObservationTable(extracts=[], observations=[], detail_count=1)
        with pytest.raises(EmptyProblemError):
            HybridSegmenter().segment(table)


class TestHybridPipeline:
    def test_registered_method(self):
        pipeline = SegmentationPipeline("hybrid")
        assert pipeline.method == "hybrid"

    def test_engine_choice_per_page(self):
        site = build_site("michigan")
        run = SegmentationPipeline("hybrid").segment_generated_site(site)
        assert run.pages[0].segmentation.meta["engine"] == "csp"
        assert run.pages[1].segmentation.meta["engine"] == "prob"

    def test_hybrid_at_least_as_good_as_each_engine(self):
        site = build_site("michigan")
        scores = {}
        for method in ("csp", "prob", "hybrid"):
            run = SegmentationPipeline(method).segment_generated_site(site)
            total = 0
            for page_run, truth in zip(run.pages, site.truth):
                total += score_page(page_run.segmentation, truth).cor
            scores[method] = total
        assert scores["hybrid"] >= max(scores["csp"], scores["prob"]) - 1

"""Corpus-wide integration test: the Table 4 experiment end to end.

This is the library's headline claim check — the qualitative shape of
the paper's results must hold on the simulated corpus:

* both content-based methods score high overall;
* the CSP shows relaxation/failure notes exactly on the dirty sites;
* the probabilistic method tolerates the inconsistencies that force
  the CSP to relax;
* on the clean subset both methods are near-perfect (Section 6.3);
* layout-based baselines trail both methods.
"""

from __future__ import annotations

import pytest

from repro.baselines.pat_tree import PatternSegmenter
from repro.baselines.runner import run_baseline_on_site
from repro.core.evaluation import PageScore
from repro.reporting.experiment import run_corpus
from repro.reporting.tables import render_table4


@pytest.fixture(scope="module")
def experiment(request):
    corpus = request.getfixturevalue("corpus")
    return run_corpus(corpus)


# Make the session-scoped corpus fixture reachable from module scope.
@pytest.fixture(scope="module")
def corpus():
    from repro.sitegen.corpus import build_corpus

    return build_corpus()


class TestHeadlineNumbers:
    def test_both_methods_strong_overall(self, experiment):
        for method in ("prob", "csp"):
            total = experiment.totals(method)
            assert total.f_measure >= 0.90, f"{method}: {total.f_measure:.2f}"
            assert total.recall >= 0.95

    def test_full_coverage(self, experiment):
        for method in ("prob", "csp"):
            rows = experiment.rows_for(method)
            assert len(rows) == 24  # 12 sites x 2 pages

    def test_clean_subset_near_perfect(self, experiment):
        # Section 6.3: excluding CSP-failure pages, CSP reached
        # P=0.99/R=0.92 and the probabilistic method P=0.78/R=1.0.
        clean = experiment.clean_pages()
        assert 10 <= len(clean) <= 20
        for method in ("prob", "csp"):
            totals = experiment.clean_totals(method)
            assert totals.f_measure >= 0.97

    def test_dirty_sites_worse_than_clean_sites(self, experiment):
        dirty = {"amazon", "bnbooks", "minnesota", "michigan"}
        for method in ("prob", "csp"):
            dirty_score = PageScore()
            clean_score = PageScore()
            for row in experiment.rows_for(method):
                if row.site in dirty:
                    dirty_score = dirty_score + row.score
                elif row.site in {"allegheny", "butler", "lee", "ohio"}:
                    clean_score = clean_score + row.score
            assert clean_score.f_measure > dirty_score.f_measure


class TestPaperNotes:
    def test_template_notes_on_five_sites(self, experiment):
        flagged = {
            row.site
            for row in experiment.rows_for("csp")
            if "a" in row.notes
        }
        assert flagged == {"amazon", "bnbooks", "minnesota", "yahoo", "superpages"}

    def test_csp_relaxes_on_dirty_sites(self, experiment):
        relaxed = {
            row.site
            for row in experiment.rows_for("csp")
            if "d" in row.notes
        }
        # The inconsistency-bearing sites must be in there.
        assert {"michigan", "minnesota", "canada411"} <= relaxed
        # ... and the pristine government sites must not.
        assert not relaxed & {"allegheny", "butler", "lee", "ohio"}

    def test_prob_never_partial(self, experiment):
        for row in experiment.rows_for("prob"):
            assert "d" not in row.notes

    def test_timing_few_seconds_per_page(self, experiment):
        for row in experiment.pages:
            assert row.elapsed < 20.0


class TestMethodComparison:
    def test_prob_tolerates_csp_failures(self, experiment):
        """On pages where the CSP had to relax, the probabilistic
        method matches or beats its correct-record count (the paper's
        Section 6.3 robustness claim, aggregate form)."""
        csp_rows = {
            (row.site, row.page_index): row
            for row in experiment.rows_for("csp")
        }
        prob_total = PageScore()
        csp_total = PageScore()
        for key, csp_row in csp_rows.items():
            if "d" not in csp_row.notes:
                continue
            prob_row = next(
                row
                for row in experiment.rows_for("prob")
                if (row.site, row.page_index) == key
            )
            prob_total = prob_total + prob_row.score
            csp_total = csp_total + csp_row.score
        assert prob_total.recall >= csp_total.recall

    def test_baseline_trails_paper_methods(self, corpus, experiment):
        baseline_total = PageScore()
        for site in corpus.sites:
            for row in run_baseline_on_site(site, PatternSegmenter()):
                baseline_total = baseline_total + row.score
        for method in ("prob", "csp"):
            assert experiment.totals(method).f_measure > baseline_total.f_measure


class TestRendering:
    def test_table4_renders_full_experiment(self, experiment):
        rendered = render_table4(experiment)
        for site in ("amazon", "superpages", "ohio"):
            assert f"{site} p0" in rendered
        assert "Precision" in rendered

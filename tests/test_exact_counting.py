"""Tests for exact solution counting and problem-level uniqueness."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings

from repro.csp.constraints import ConstraintSystem, Relation
from repro.csp.exact import ExactSolver
from repro.csp.relaxation import RelaxationLevel, encode_at_level
from tests.conftest import PAPER_TABLE1, build_observation_table
from tests.test_solvers import random_systems


def brute_force_count(system):
    return sum(
        1
        for bits in itertools.product((0, 1), repeat=system.num_vars)
        if system.is_satisfied(list(bits))
    )


class TestCountSolutions:
    def test_unsat_counts_zero(self):
        system = ConstraintSystem(num_vars=1)
        system.add([(1, 0)], Relation.EQ, 1)
        system.add([(1, 0)], Relation.EQ, 0)
        assert ExactSolver(system).count_solutions() == 0

    def test_exactly_one_over_pair(self):
        system = ConstraintSystem(num_vars=2)
        system.add([(1, 0), (1, 1)], Relation.EQ, 1)
        assert ExactSolver(system).count_solutions() == 2

    def test_free_variables_multiply(self):
        system = ConstraintSystem(num_vars=3)
        system.add([(1, 0)], Relation.EQ, 1)
        assert ExactSolver(system).count_solutions() == 4  # 2 free vars

    def test_limit_respected(self):
        system = ConstraintSystem(num_vars=10)  # 1024 solutions
        assert ExactSolver(system).count_solutions(limit=7) == 7

    def test_solver_reusable_after_count(self):
        system = ConstraintSystem(num_vars=2)
        system.add([(1, 0), (1, 1)], Relation.EQ, 1)
        solver = ExactSolver(system)
        assert solver.count_solutions() == 2
        result = solver.solve()
        assert result.satisfiable
        assert solver.count_solutions() == 2

    @settings(deadline=None, max_examples=40)
    @given(random_systems())
    def test_count_matches_brute_force(self, system):
        ours = ExactSolver(system).count_solutions(limit=1_000)
        assert ours == brute_force_count(system)


class TestPaperExampleUniqueness:
    """The clean-data case: the constraints pin a single assignment."""

    def test_strict_problem_has_unique_solution(self):
        table = build_observation_table(PAPER_TABLE1, detail_count=3)
        problem = encode_at_level(table, RelaxationLevel.STRICT)
        count = ExactSolver(problem.system).count_solutions(limit=10)
        assert count == 1

    def test_without_positions_still_unique(self):
        # Consecutiveness + uniqueness alone happen to suffice here;
        # position constraints add redundancy (belt and braces).
        from repro.csp.encoder import EncoderConfig, encode_segmentation

        table = build_observation_table(PAPER_TABLE1, detail_count=3)
        problem = encode_segmentation(
            table, EncoderConfig(position_constraints=False)
        )
        count = ExactSolver(problem.system).count_solutions(limit=10)
        assert count >= 1

    def test_relaxed_problem_has_many_solutions(self):
        table = build_observation_table(PAPER_TABLE1, detail_count=3)
        problem = encode_at_level(
            table, RelaxationLevel.RELAXED, soft_assign=False
        )
        count = ExactSolver(problem.system).count_solutions(limit=50)
        assert count > 1  # the empty assignment, the true one, ...

"""End-to-end tests of the HTTP serving layer.

Drives a real in-process :class:`~repro.serve.http.SegmentationServer`
(ephemeral port) through :class:`~repro.serve.client.ServeClient` —
actual sockets, actual JSON.  Includes the issue's acceptance test:
same site twice (cold ``"pipeline"`` then warm ``"wrapper"`` with
identical records), a redesigned page triggering drift fallback and
re-induction, and ``/metricz`` reporting the matching counters.
"""

from __future__ import annotations

import dataclasses
import http.client
import threading
import time
import urllib.error

import pytest

from repro.crawl.resilient import CrawlBudget
from repro.serve import (
    SegmentationServer,
    SegmentationService,
    ServeClient,
    ServiceConfig,
    payload_from_pages,
)
from repro.sitegen.corpus import build_site
from repro.sitegen.site import GeneratedSite, RowLayout


def site_payload(site, name):
    return payload_from_pages(
        name,
        site.list_pages,
        [site.detail_pages(index) for index in range(len(site.list_pages))],
    )


@pytest.fixture()
def server_factory():
    """Build servers on ephemeral ports; tear them all down after."""
    servers = []

    def build(config: ServiceConfig) -> tuple[SegmentationServer, ServeClient]:
        server = SegmentationServer(SegmentationService(config), port=0)
        servers.append(server)
        server.start()
        return server, ServeClient(server.address, timeout_s=120.0)

    yield build
    for server in servers:
        server.shutdown(drain_timeout_s=5.0)


def test_acceptance_cold_warm_drift(server_factory):
    """The issue's end-to-end criterion, over real HTTP."""
    _, client = server_factory(ServiceConfig(method="prob"))
    site = build_site("ohio")
    payload = site_payload(site, "ohio")

    cold = client.segment(payload)
    assert cold.status == 200
    assert cold.body["path"] == "pipeline"
    assert cold.body["record_count"] > 0
    assert cold.headers.get("X-Trace-Id") == cold.body["trace_id"]

    warm = client.segment(payload)
    assert warm.status == 200
    assert warm.body["path"] == "wrapper"
    assert warm.body["pages"] == cold.body["pages"]

    # A site redesign: same site name, different row layout.
    redesigned = GeneratedSite(
        dataclasses.replace(site.spec, layout=RowLayout.BLOCKS)
    )
    drifted = client.segment(site_payload(redesigned, "ohio"))
    assert drifted.status == 200
    assert drifted.body["path"] == "pipeline"
    assert drifted.body["drift"]["drifted"]
    assert drifted.body["record_count"] > 0

    # Re-induction: the new layout is warm on the next request.
    healed = client.segment(site_payload(redesigned, "ohio"))
    assert healed.status == 200
    assert healed.body["path"] == "wrapper"

    metricz = client.metricz()
    assert metricz.status == 200
    counters = metricz.body["counters"]
    assert counters["serve.requests"] == 4
    assert counters["serve.wrapper_hits"] == 2
    assert counters["serve.fallbacks"] == 1
    assert counters["serve.pipeline_runs"] == 2
    assert counters["serve.reinductions"] == 1
    assert "serve.request.seconds" in metricz.body["histograms"]

    health = client.healthz()
    assert health.status == 200
    assert health.body["status"] == "ok"
    assert health.body["sites_cached"] == 1


def test_queue_saturation_answers_429(server_factory):
    server, client = server_factory(
        ServiceConfig(workers=1, max_queue=1)
    )
    release = threading.Event()
    statuses: list[int] = []
    lock = threading.Lock()

    def fire():
        response = client.sleep(1.0)
        with lock:
            statuses.append(response.status)
        release.set()

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # 1 in flight + 1 queued; the other two are shed at the door.
    assert sorted(statuses) == [200, 200, 429, 429]
    rejected = server.service.metrics.counter("serve.rejected")
    assert rejected.value == 2


def test_429_carries_retry_after(server_factory):
    _, client = server_factory(ServiceConfig(workers=1, max_queue=1))
    responses = []
    threads = [
        threading.Thread(target=lambda: responses.append(client.sleep(0.8)))
        for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    rejected = [r for r in responses if r.status == 429]
    assert rejected
    for response in rejected:
        assert int(response.headers["Retry-After"]) >= 1


def test_deadline_answers_504(server_factory):
    config = ServiceConfig(
        workers=1, max_queue=2, request_budget=CrawlBudget(deadline_s=0.2)
    )
    server, client = server_factory(config)
    response = client.sleep(2.0)
    assert response.status == 504
    assert server.service.metrics.counter("serve.deadline_hits").value >= 1


def test_bad_json_answers_400(server_factory):
    server, client = server_factory(ServiceConfig())
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    conn.request(
        "POST",
        "/v1/segment",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    assert response.status == 400
    conn.close()


def test_malformed_payload_answers_400(server_factory):
    _, client = server_factory(ServiceConfig())
    response = client.segment({"site": "x"})
    assert response.status == 400
    assert "error" in response.body


def test_oversized_body_answers_413(server_factory):
    _, client = server_factory(
        ServiceConfig(max_body_bytes=64)
    )
    response = client.segment({"site": "x", "pages": [{"list": "y" * 200}]})
    assert response.status == 413


def test_unknown_routes(server_factory):
    _, client = server_factory(ServiceConfig())
    assert client._request("/nope").status == 404
    assert client._request("/v1/segment").status == 405  # GET on POST route


def test_graceful_shutdown_drains(server_factory):
    server, client = server_factory(ServiceConfig(workers=1, max_queue=4))
    results: list[int] = []

    def slow():
        results.append(client.sleep(0.5).status)

    thread = threading.Thread(target=slow)
    thread.start()
    # Let the job reach a worker before we start draining.
    for _ in range(100):
        if server.in_flight() or server.queue_depth():
            break
        time.sleep(0.01)
    server.shutdown(drain_timeout_s=10.0)
    thread.join()
    # The in-flight request finished despite shutdown...
    assert results == [200]
    # ...and the socket is closed afterwards.
    with pytest.raises(urllib.error.URLError):
        client.healthz()


def test_draining_server_refuses_new_segments(server_factory):
    server, client = server_factory(ServiceConfig())
    server.draining.set()
    refused = client.segment({"_sleep": 0.0})
    assert refused.status == 503
    health = client.healthz()
    assert health.status == 200
    assert health.body["status"] == "draining"

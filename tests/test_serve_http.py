"""End-to-end tests of the HTTP serving layer.

Drives a real in-process :class:`~repro.serve.http.SegmentationServer`
(ephemeral port) through :class:`~repro.serve.client.ServeClient` —
actual sockets, actual JSON.  Includes the issue's acceptance test:
same site twice (cold ``"pipeline"`` then warm ``"wrapper"`` with
identical records), a redesigned page triggering drift fallback and
re-induction, and ``/metricz`` reporting the matching counters.
"""

from __future__ import annotations

import dataclasses
import http.client
import io
import sys
import threading
import time
import urllib.error

import pytest

from repro.crawl.resilient import CrawlBudget
from repro.serve import (
    SegmentationServer,
    SegmentationService,
    ServeClient,
    ServiceConfig,
    Supervisor,
    SupervisorConfig,
    payload_from_pages,
    supports_reuse_port,
)
from repro.sitegen.corpus import build_site
from repro.sitegen.site import GeneratedSite, RowLayout


def site_payload(site, name):
    return payload_from_pages(
        name,
        site.list_pages,
        [site.detail_pages(index) for index in range(len(site.list_pages))],
    )


@pytest.fixture()
def server_factory():
    """Build servers on ephemeral ports; tear them all down after."""
    servers = []

    def build(config: ServiceConfig) -> tuple[SegmentationServer, ServeClient]:
        server = SegmentationServer(SegmentationService(config), port=0)
        servers.append(server)
        server.start()
        return server, ServeClient(server.address, timeout_s=120.0)

    yield build
    for server in servers:
        server.shutdown(drain_timeout_s=5.0)


def test_acceptance_cold_warm_drift(server_factory):
    """The issue's end-to-end criterion, over real HTTP."""
    _, client = server_factory(ServiceConfig(method="prob"))
    site = build_site("ohio")
    payload = site_payload(site, "ohio")

    cold = client.segment(payload)
    assert cold.status == 200
    assert cold.body["path"] == "pipeline"
    assert cold.body["record_count"] > 0
    assert cold.headers.get("X-Trace-Id") == cold.body["trace_id"]

    warm = client.segment(payload)
    assert warm.status == 200
    assert warm.body["path"] == "wrapper"
    assert warm.body["pages"] == cold.body["pages"]

    # A site redesign: same site name, different row layout.
    redesigned = GeneratedSite(
        dataclasses.replace(site.spec, layout=RowLayout.BLOCKS)
    )
    drifted = client.segment(site_payload(redesigned, "ohio"))
    assert drifted.status == 200
    assert drifted.body["path"] == "pipeline"
    assert drifted.body["drift"]["drifted"]
    assert drifted.body["record_count"] > 0

    # Re-induction: the new layout is warm on the next request.
    healed = client.segment(site_payload(redesigned, "ohio"))
    assert healed.status == 200
    assert healed.body["path"] == "wrapper"

    metricz = client.metricz()
    assert metricz.status == 200
    counters = metricz.body["counters"]
    assert counters["serve.requests"] == 4
    assert counters["serve.wrapper_hits"] == 2
    assert counters["serve.fallbacks"] == 1
    assert counters["serve.pipeline_runs"] == 2
    assert counters["serve.reinductions"] == 1
    assert "serve.request.seconds" in metricz.body["histograms"]

    health = client.healthz()
    assert health.status == 200
    assert health.body["status"] == "ok"
    assert health.body["sites_cached"] == 1


def test_queue_saturation_answers_429(server_factory):
    server, client = server_factory(
        ServiceConfig(workers=1, max_queue=1)
    )
    release = threading.Event()
    statuses: list[int] = []
    lock = threading.Lock()

    def fire():
        response = client.sleep(1.0)
        with lock:
            statuses.append(response.status)
        release.set()

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # 1 in flight + 1 queued; the other two are shed at the door.
    assert sorted(statuses) == [200, 200, 429, 429]
    rejected = server.service.metrics.counter("serve.rejected")
    assert rejected.value == 2


def test_429_carries_retry_after(server_factory):
    _, client = server_factory(ServiceConfig(workers=1, max_queue=1))
    responses = []
    threads = [
        threading.Thread(target=lambda: responses.append(client.sleep(0.8)))
        for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    rejected = [r for r in responses if r.status == 429]
    assert rejected
    for response in rejected:
        assert int(response.headers["Retry-After"]) >= 1


def test_deadline_answers_504(server_factory):
    config = ServiceConfig(
        workers=1, max_queue=2, request_budget=CrawlBudget(deadline_s=0.2)
    )
    server, client = server_factory(config)
    response = client.sleep(2.0)
    assert response.status == 504
    assert server.service.metrics.counter("serve.deadline_hits").value >= 1


def test_bad_json_answers_400(server_factory):
    server, client = server_factory(ServiceConfig())
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    conn.request(
        "POST",
        "/v1/segment",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    assert response.status == 400
    conn.close()


def test_malformed_payload_answers_400(server_factory):
    _, client = server_factory(ServiceConfig())
    response = client.segment({"site": "x"})
    assert response.status == 400
    assert "error" in response.body


def test_oversized_body_answers_413(server_factory):
    _, client = server_factory(
        ServiceConfig(max_body_bytes=64)
    )
    response = client.segment({"site": "x", "pages": [{"list": "y" * 200}]})
    assert response.status == 413


def test_unknown_routes(server_factory):
    _, client = server_factory(ServiceConfig())
    assert client._request("/nope").status == 404
    assert client._request("/v1/segment").status == 405  # GET on POST route


def test_graceful_shutdown_drains(server_factory):
    server, client = server_factory(ServiceConfig(workers=1, max_queue=4))
    results: list[int] = []

    def slow():
        results.append(client.sleep(0.5).status)

    thread = threading.Thread(target=slow)
    thread.start()
    # Let the job reach a worker before we start draining.
    for _ in range(100):
        if server.in_flight() or server.queue_depth():
            break
        time.sleep(0.01)
    server.shutdown(drain_timeout_s=10.0)
    thread.join()
    # The in-flight request finished despite shutdown...
    assert results == [200]
    # ...and the socket is closed afterwards.
    with pytest.raises(urllib.error.URLError):
        client.healthz()


def test_draining_server_refuses_new_segments(server_factory):
    server, client = server_factory(ServiceConfig())
    server.draining.set()
    refused = client.segment({"_sleep": 0.0})
    assert refused.status == 503
    health = client.healthz()
    assert health.status == 200
    assert health.body["status"] == "draining"


def test_shutdown_race_queued_finish_new_refused(server_factory):
    """SIGTERM with a full queue: queued jobs finish, new ones get 503."""
    server, client = server_factory(ServiceConfig(workers=1, max_queue=4))
    statuses: list[int] = []
    lock = threading.Lock()

    def held():
        response = client.sleep(0.4)
        with lock:
            statuses.append(response.status)

    threads = [threading.Thread(target=held) for _ in range(3)]
    for thread in threads:
        thread.start()
    # Wait until one runs and the rest sit in the queue.
    for _ in range(200):
        if server.in_flight() >= 1 and server.queue_depth() >= 2:
            break
        time.sleep(0.01)
    shutter = threading.Thread(
        target=lambda: server.shutdown(drain_timeout_s=10.0)
    )
    shutter.start()
    for _ in range(200):
        if server.draining.is_set():
            break
        time.sleep(0.01)
    # A request arriving mid-drain is refused at the door...
    assert client.sleep(0.0).status == 503
    shutter.join(timeout=15.0)
    for thread in threads:
        thread.join(timeout=15.0)
    # ...while everything already admitted completed.
    assert statuses == [200, 200, 200]


def test_double_shutdown_is_idempotent():
    from repro.obs import ManualClock

    clock = ManualClock(start=100.0)
    server = SegmentationServer(
        SegmentationService(ServiceConfig()), port=0, clock=clock
    )
    server.start()
    server.shutdown(drain_timeout_s=5.0)
    # Repeat and concurrent calls return immediately, no second close.
    server.shutdown(drain_timeout_s=5.0)
    racers = [
        threading.Thread(target=server.shutdown) for _ in range(4)
    ]
    for racer in racers:
        racer.start()
    for racer in racers:
        racer.join(timeout=5.0)
        assert not racer.is_alive()


def test_watchdog_converts_hung_request_to_504(server_factory):
    config = ServiceConfig(
        workers=1,
        max_queue=4,
        request_budget=CrawlBudget(deadline_s=0.3),
        hung_grace_s=0.2,
    )
    server, client = server_factory(config)
    hung = client.sleep(5.0)  # wedges the only worker thread
    assert hung.status == 504
    metrics = server.service.metrics
    for _ in range(100):
        if metrics.counter("serve.watchdog.hung_requests").value >= 1:
            break
        time.sleep(0.01)
    assert metrics.counter("serve.watchdog.hung_requests").value >= 1
    assert metrics.counter("serve.watchdog.replacements").value >= 1
    # The replacement thread restored capacity: a fresh request works
    # even though the original worker is still asleep.
    assert client.sleep(0.0).status == 200
    assert server.in_flight() == 0  # the gauge did not leak


def test_external_status_and_metrics_surface(server_factory):
    server, client = server_factory(ServiceConfig())
    server.external_status = "degraded"
    server.external_metrics = {
        "counters": {"serve.supervisor.restarts": 7},
        "histograms": {},
    }
    health = client.healthz()
    assert health.body["status"] == "degraded"
    metricz = client.metricz()
    assert metricz.body["counters"]["serve.supervisor.restarts"] == 7
    server.external_status = None
    assert client.healthz().body["status"] == "ok"


class TestSupervised:
    """Full-stack supervised serving: real workers, real SIGKILL."""

    pytestmark = pytest.mark.skipif(
        not supports_reuse_port(), reason="needs SO_REUSEPORT"
    )

    @pytest.fixture()
    def supervised(self, tmp_path):
        procs = []
        out = io.StringIO()

        def worker_command(spawn):
            return [
                sys.executable, "-m", "repro", "serve",
                "--port", str(spawn.port),
                "--workers", "1",
                "--max-queue", "8",
                "--wrapper-cache-dir", str(tmp_path / "wrappers"),
                "--_worker-index", str(spawn.index),
                "--_generation", str(spawn.generation),
                "--_heartbeat-fd", str(spawn.heartbeat_fd),
                "--_heartbeat-interval", str(spawn.heartbeat_interval_s),
            ]

        supervisor = Supervisor(
            worker_command,
            SupervisorConfig(
                procs=2,
                crash_budget=8,
                crash_window_s=60.0,
                backoff_base_s=0.05,
                backoff_max_s=0.5,
                heartbeat_interval_s=0.1,
                heartbeat_timeout_s=10.0,
                drain_grace_s=15.0,
            ),
            port=0,
            out=out,
        )
        codes: list[int] = []
        thread = threading.Thread(
            target=lambda: codes.append(
                supervisor.run(install_signals=False)
            ),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if supervisor.live_workers() == 2:
                break
            time.sleep(0.05)
        client = ServeClient(
            supervisor.address,
            timeout_s=120.0,
            max_retries=6,
            retry_base_s=0.1,
        )
        # Wait until a worker actually answers (binding takes a beat).
        while time.monotonic() < deadline:
            try:
                if client.healthz().status == 200:
                    break
            except (urllib.error.URLError, ConnectionError):
                time.sleep(0.1)
        yield supervisor, client, codes
        supervisor.stop()
        thread.join(timeout=30.0)

    def test_sigkill_mid_load_recovers_byte_identical(self, supervised):
        supervisor, client, codes = supervised
        site = build_site("lee")
        payload = site_payload(site, "lee")
        cold = client.segment(payload)
        assert cold.status == 200
        warm = client.segment(payload)
        assert warm.status == 200

        victim = supervisor._slots[0].process
        victim.kill()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            slot = supervisor._slots[0]
            if slot.process is not None and slot.process.pid != victim.pid:
                break
            time.sleep(0.05)
        assert supervisor._slots[0].generation >= 1

        # The retrying client rides out the reset; the answer is
        # byte-identical because the replacement warms from the shared
        # disk registry rather than re-inducing.
        after = client.segment(payload)
        assert after.status == 200
        assert after.body["pages"] == warm.body["pages"]
        restarts = supervisor.metrics.counter("serve.supervisor.restarts")
        assert restarts.value >= 1


def test_query_endpoint_over_http(server_factory, tmp_path):
    """/query answers the store the same requests populated online."""
    _, client = server_factory(
        ServiceConfig(method="prob", store_path=str(tmp_path / "q.db"))
    )
    site = build_site("ohio")
    assert client.segment(site_payload(site, "ohio")).status == 200

    answer = client.query(["name", "offense"])
    assert answer.status == 200
    assert answer.body["tables"][0]["site"] == "ohio"
    assert answer.body["row_count"] > 0
    first = answer.body["rows"][0]
    assert first["site"] == "ohio" and "record" in first

    # Comma form and the limit parameter ride the query string too.
    comma = client.query("name,offense", limit=3)
    assert comma.status == 200
    assert comma.body["keywords"] == ["name", "offense"]
    assert comma.body["row_count"] == 3

    empty = client.query([" , "])
    assert empty.status == 400


def test_query_endpoint_without_store_404s(server_factory):
    _, client = server_factory(ServiceConfig(method="prob"))
    assert client.query(["name"]).status == 404

"""End-to-end pipeline tests on individual sites."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.evaluation import score_page
from repro.core.exceptions import (
    ConfigError,
    EmptyProblemError,
    InferenceError,
    TemplateNotFoundError,
)
from repro.core.pipeline import SegmentationPipeline
from repro.extraction.matching import MatchOptions
from repro.sitegen.corpus import build_site
from repro.webdoc.page import Page


class TestConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            SegmentationPipeline("magic")

    def test_mismatched_punct_sets_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(
                match=MatchOptions(allowed_punct=frozenset(".")),
            )

    def test_page_count_mismatch_rejected(self):
        site = build_site("ohio")
        pipeline = SegmentationPipeline("csp")
        with pytest.raises(ConfigError):
            pipeline.segment_site(site.list_pages, [site.detail_pages(0)])


@pytest.mark.parametrize("method", ["csp", "prob"])
class TestEndToEnd:
    def test_clean_site_perfect(self, method):
        site = build_site("butler")
        run = SegmentationPipeline(method).segment_generated_site(site)
        assert run.template_verdict.ok
        assert not run.whole_page_fallback
        for page_run, truth in zip(run.pages, site.truth):
            score = score_page(page_run.segmentation, truth)
            assert score.cor == len(truth.rows)
            assert score.inc == score.fn == score.fp == 0

    def test_template_failure_site_still_segments(self, method):
        site = build_site("superpages")
        run = SegmentationPipeline(method).segment_generated_site(site)
        assert run.whole_page_fallback
        for page_run, truth in zip(run.pages, site.truth):
            assert page_run.segmentation.meta["whole_page"]
            score = score_page(page_run.segmentation, truth)
            assert score.cor >= len(truth.rows) - 2

    def test_timing_a_few_seconds_per_page(self, method):
        # Section 6.1: "The CSP and probabilistic algorithms were
        # exceedingly fast, taking only a few seconds to run".
        site = build_site("michigan")
        run = SegmentationPipeline(method).segment_generated_site(site)
        assert all(page_run.elapsed < 20.0 for page_run in run.pages)

    def test_meta_annotations(self, method):
        site = build_site("butler")
        run = SegmentationPipeline(method).segment_generated_site(site)
        meta = run.pages[0].segmentation.meta
        assert meta["template_ok"] is True
        assert meta["whole_page"] is False


class TestInconsistencyHandling:
    def test_csp_relaxes_on_michigan_page_two(self):
        site = build_site("michigan")
        run = SegmentationPipeline("csp").segment_generated_site(site)
        assert run.pages[1].segmentation.meta["relaxed"]
        assert not run.pages[0].segmentation.meta["relaxed"]

    def test_prob_tolerates_michigan_without_partiality(self):
        site = build_site("michigan")
        run = SegmentationPipeline("prob").segment_generated_site(site)
        assert not run.pages[1].segmentation.is_partial

    def test_prob_beats_csp_on_canada411_dirty_page(self):
        site = build_site("canada411")
        prob = SegmentationPipeline("prob").segment_generated_site(site)
        csp = SegmentationPipeline("csp").segment_generated_site(site)
        prob_score = score_page(prob.pages[1].segmentation, site.truth[1])
        csp_score = score_page(csp.pages[1].segmentation, site.truth[1])
        assert prob_score.cor >= csp_score.cor


class TestDegeneratePages:
    def test_empty_problem_returns_empty_segmentation(self):
        # Detail pages that share nothing with the list page.
        lists = [
            Page("l0", "<html><body><h2>Hdr One</h2><p>alpha beta</p></body></html>"),
            Page("l1", "<html><body><h2>Hdr One</h2><p>gamma delta</p></body></html>"),
        ]
        details = [[Page("d0", "<html>unrelated</html>")], [Page("d1", "<html>nothing</html>")]]
        run = SegmentationPipeline("csp").segment_site(lists, details)
        for page_run in run.pages:
            assert page_run.segmentation.records == []
            assert page_run.segmentation.meta.get("empty_problem")


class _RaisingSegmenter:
    """A segmenter stub that always raises a given exception."""

    def __init__(self, error: Exception) -> None:
        self.error = error

    def segment(self, table):
        raise self.error


class TestRecoverableExceptionPaths:
    """The pipeline's paper-prescribed fallbacks for recoverable errors."""

    def test_empty_problem_error_from_segmenter_recovers(self, monkeypatch):
        # A segmenter may judge a non-empty table unsegmentable on
        # stricter criteria than the pipeline's own pre-check; the
        # EmptyProblemError it raises must degrade, not propagate.
        site = build_site("butler")
        pipeline = SegmentationPipeline("csp")
        monkeypatch.setattr(
            pipeline,
            "_make_segmenter",
            lambda: _RaisingSegmenter(EmptyProblemError("nothing usable")),
        )
        run = pipeline.segment_generated_site(site)
        for page_run in run.pages:
            assert page_run.segmentation.records == []
            assert page_run.segmentation.meta.get("empty_problem")

    def test_inference_error_reported_as_unsegmented_page(self, monkeypatch):
        site = build_site("butler")
        pipeline = SegmentationPipeline("prob")
        monkeypatch.setattr(
            pipeline,
            "_make_segmenter",
            lambda: _RaisingSegmenter(InferenceError("zero forward mass")),
        )
        run = pipeline.segment_generated_site(site)
        for page_run, truth in zip(run.pages, site.truth):
            assert page_run.segmentation.records == []
            assert "zero forward mass" in page_run.segmentation.meta["segmenter_error"]
            score = score_page(page_run.segmentation, truth)
            assert score.fn == len(truth.rows)  # unsegmented, not wrong

    def test_template_not_found_error_takes_whole_page_fallback(self, monkeypatch):
        # A finder that gives up by raising (rather than returning a
        # failed verdict) must land on the same Section 6.2 fallback:
        # "we have taken the entire text of the list page for analysis".
        site = build_site("butler")
        pipeline = SegmentationPipeline("prob")

        def raise_not_found(pages):
            raise TemplateNotFoundError("corrupted sample pages")

        monkeypatch.setattr(pipeline._finder, "find", raise_not_found)
        run = pipeline.segment_generated_site(site)
        assert run.whole_page_fallback
        assert "corrupted sample pages" in run.template_verdict.reason
        for page_run, truth in zip(run.pages, site.truth):
            assert page_run.segmentation.meta["whole_page"]
            score = score_page(page_run.segmentation, truth)
            assert score.cor >= len(truth.rows) - 2

    def test_whole_page_fallback_under_corrupted_input(self):
        # Organically corrupted input (no shared template at all):
        # every page is noise, template induction fails, and the
        # pipeline still returns a run instead of raising.
        lists = [
            Page("l0", "<html><body><p>xqj zvk wpl</p></body></html>"),
            Page("l1", "<div><span>totally different soup"),
        ]
        details = [[Page("d0", "<html>noise</html>")], [Page("d1", "<p>junk")]]
        run = SegmentationPipeline("csp").segment_site(lists, details)
        assert run.whole_page_fallback
        assert len(run.pages) == 2
        for page_run in run.pages:
            assert page_run.segmentation.meta["whole_page"]

"""Tests for the site simulator: rng, datagen, schemas, rendering."""

from __future__ import annotations

import pytest

from repro.core.exceptions import FetchError, SiteGenError
from repro.sitegen import datagen
from repro.sitegen.corruptions import (
    MissingDetailField,
    PlantedMention,
    Quirks,
    ValueMismatch,
)
from repro.sitegen.domains.common import ensure_no_singletons
from repro.sitegen.rng import SiteRng
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import GeneratedSite, RowLayout, SiteSpec


class TestSiteRng:
    def test_deterministic(self):
        a = SiteRng(42)
        b = SiteRng(42)
        assert [a.randint(0, 100) for _ in range(5)] == [
            b.randint(0, 100) for _ in range(5)
        ]

    def test_fork_deterministic_and_independent(self):
        first = SiteRng(42).fork("records")
        second = SiteRng(42).fork("records")
        other = SiteRng(42).fork("noise")
        values = [first.randint(0, 10**9) for _ in range(3)]
        assert values == [second.randint(0, 10**9) for _ in range(3)]
        assert values != [other.randint(0, 10**9) for _ in range(3)]

    def test_pick_and_sample(self):
        rng = SiteRng(1)
        items = ["a", "b", "c"]
        assert rng.pick(items) in items
        assert sorted(rng.sample(items, 2))[0] in items
        assert len(rng.sample(items, 10)) == 3

    def test_digits(self):
        digits = SiteRng(1).digits(6)
        assert len(digits) == 6 and digits.isdigit()


class TestDatagen:
    def setup_method(self):
        self.rng = SiteRng(7)

    def test_phone_is_single_token(self):
        phone = datagen.phone_number(self.rng)
        assert " " not in phone
        assert phone.count("-") == 2

    def test_city_state(self):
        value = datagen.city_state(self.rng, "OH")
        assert value.endswith(", OH")

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            datagen.city_of(self.rng, "XX")

    def test_author_names_distinct(self):
        names = datagen.author_names(self.rng, 4)
        assert len(set(names)) == 4

    def test_price_format(self):
        price = datagen.price(self.rng)
        assert price.startswith("$") and "." in price

    def test_parcel_and_inmate_ids(self):
        assert datagen.parcel_id(self.rng).count("-") == 2
        assert datagen.inmate_id(self.rng, "K").startswith("K")

    def test_dates_zero_padded(self):
        date = datagen.admission_date(self.rng)
        month, day, year = date.split("-")
        assert len(month) == 2 and len(day) == 2 and len(year) == 4


class TestSchema:
    def test_first_field_cannot_be_missing(self):
        with pytest.raises(SiteGenError):
            RecordSchema(
                fields=[FieldSpec("x", lambda rng: "v", missing_rate=0.5)]
            )

    def test_first_field_cannot_be_one_sided(self):
        with pytest.raises(SiteGenError):
            RecordSchema(
                fields=[FieldSpec("x", lambda rng: "v", detail_only=True)]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SiteGenError):
            RecordSchema(
                fields=[
                    FieldSpec("x", lambda rng: "v"),
                    FieldSpec("x", lambda rng: "w"),
                ]
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SiteGenError):
            RecordSchema(fields=[])

    def test_missing_fields_dropped(self):
        schema = RecordSchema(
            fields=[
                FieldSpec("id", lambda rng: "X"),
                FieldSpec("opt", lambda rng: "Y", missing_rate=1.0),
            ]
        )
        record = schema.generate(SiteRng(1))
        assert record == {"id": "X"}

    def test_list_and_detail_field_views(self):
        schema = RecordSchema(
            fields=[
                FieldSpec("id", lambda rng: "X"),
                FieldSpec("hidden", lambda rng: "Y", detail_only=True),
                FieldSpec("shallow", lambda rng: "Z", list_only=True),
            ]
        )
        assert schema.list_fields == ["id", "shallow"]
        assert schema.detail_fields == ["id", "hidden"]

    def test_field_named(self):
        schema = RecordSchema(fields=[FieldSpec("id", lambda rng: "X")])
        assert schema.field_named("id").name == "id"
        with pytest.raises(KeyError):
            schema.field_named("nope")


class TestEnsureNoSingletons:
    def test_singletons_removed(self):
        rng = SiteRng(3)
        records = [{"f": "a"}, {"f": "a"}, {"f": "b"}, {"f": "c"}]
        ensure_no_singletons(rng, records, "f")
        from collections import Counter

        counts = Counter(r["f"] for r in records)
        assert all(count >= 2 for count in counts.values())

    def test_all_distinct_becomes_paired(self):
        rng = SiteRng(3)
        records = [{"f": "a"}, {"f": "b"}, {"f": "c"}, {"f": "d"}]
        ensure_no_singletons(rng, records, "f")
        from collections import Counter

        counts = Counter(r["f"] for r in records)
        assert all(count >= 2 for count in counts.values())

    def test_missing_field_ignored(self):
        rng = SiteRng(3)
        records = [{"f": "a"}, {}, {"f": "a"}]
        ensure_no_singletons(rng, records, "f")
        assert records[1] == {}


def simple_spec(**overrides):
    schema = RecordSchema(
        fields=[
            FieldSpec("name", datagen.full_person_name),
            FieldSpec("phone", datagen.phone_number),
        ]
    )
    defaults = dict(
        name="testsite",
        title="Test Site",
        domain="whitepages",
        schema=schema,
        records_per_page=(4, 5),
        layout=RowLayout.GRID,
        seed=11,
    )
    defaults.update(overrides)
    return SiteSpec(**defaults)


class TestGeneratedSite:
    def test_page_counts(self):
        site = GeneratedSite(simple_spec())
        assert len(site.list_pages) == 2
        assert len(site.detail_pages(0)) == 4
        assert len(site.detail_pages(1)) == 5

    def test_needs_two_pages(self):
        with pytest.raises(SiteGenError):
            GeneratedSite(simple_spec(records_per_page=(4,)))

    def test_deterministic_rendering(self):
        first = GeneratedSite(simple_spec())
        second = GeneratedSite(simple_spec())
        assert first.list_pages[0].html == second.list_pages[0].html
        assert first.detail_pages(1)[2].html == second.detail_pages(1)[2].html

    def test_truth_spans_contain_row_values(self):
        site = GeneratedSite(simple_spec())
        page = site.list_pages[0]
        for row in site.truth[0].rows:
            start, end = row.span
            fragment = page.html[start:end]
            for value in row.values.values():
                assert value.split()[0] in fragment

    def test_truth_spans_disjoint_and_ordered(self):
        site = GeneratedSite(simple_spec())
        spans = [row.span for row in site.truth[0].rows]
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_detail_pages_contain_record_values(self):
        site = GeneratedSite(simple_spec())
        for row, detail in zip(site.truth[0].rows, site.detail_pages(0)):
            for value in row.values.values():
                assert value.split()[0] in detail.html

    def test_fetch_roundtrip_and_unknown(self):
        site = GeneratedSite(simple_spec())
        url = site.truth[0].rows[0].detail_url
        assert site.fetch(url).kind == "detail"
        with pytest.raises(FetchError):
            site.fetch("missing.html")

    def test_every_layout_renders(self):
        for layout in RowLayout:
            site = GeneratedSite(simple_spec(layout=layout))
            assert site.truth[0].rows
            # Spans still valid under each layout.
            row = site.truth[0].rows[-1]
            start, end = row.span
            assert end > start

    def test_row_of_offset(self):
        site = GeneratedSite(simple_spec())
        truth = site.truth[0]
        row = truth.rows[1]
        middle = (row.span[0] + row.span[1]) // 2
        assert truth.row_of_offset(middle) is row
        assert truth.row_of_offset(10**9) is None


class TestQuirkRendering:
    def test_case_mismatch(self):
        quirks = Quirks(case_mismatch_fields=("name",))
        site = GeneratedSite(simple_spec(quirks=quirks))
        row = site.truth[0].rows[0]
        assert row.values["name"].isupper()
        # Detail page keeps the original casing.
        detail = site.detail_pages(0)[0]
        assert row.values["name"] not in detail.html

    def test_case_mismatch_stride(self):
        quirks = Quirks(case_mismatch_fields=("name",), case_mismatch_stride=2)
        site = GeneratedSite(simple_spec(quirks=quirks))
        rows = site.truth[0].rows
        assert rows[0].values["name"].isupper()
        assert not rows[1].values["name"].isupper()

    def test_et_al(self):
        quirks = Quirks(et_al_field="name")
        assert (
            quirks.list_view("name", "Ann Ray, Bob Oak, Cal Elm")
            == "Ann Ray, et al."
        )
        assert quirks.list_view("name", "Ann Ray") == "Ann Ray"

    def test_value_mismatch_and_plant(self):
        quirks = Quirks(
            value_mismatch=ValueMismatch(
                field="name", list_value="Target", detail_value="Changed",
                plant_record=1,
            )
        )
        assert quirks.detail_view("name", "Target") == "Changed"
        assert quirks.detail_view("name", "Other") == "Other"
        site = GeneratedSite(simple_spec(quirks=quirks))
        assert "Target board hearing" in site.detail_pages(0)[1].html

    def test_missing_detail_field(self):
        quirks = Quirks(
            missing_detail_field=MissingDetailField(field="phone", page=0, record=2)
        )
        site = GeneratedSite(simple_spec(quirks=quirks))
        row = site.truth[0].rows[2]
        assert row.values["phone"] not in site.detail_pages(0)[2].html
        # Other records keep theirs.
        other = site.truth[0].rows[0]
        assert other.values["phone"] in site.detail_pages(0)[0].html

    def test_history_contamination(self):
        quirks = Quirks(history_contamination=2)
        site = GeneratedSite(simple_spec(quirks=quirks))
        rows = site.truth[0].rows
        third_detail = site.detail_pages(0)[2].html
        assert "Recently Viewed" in third_detail
        # Previous records' names appear (detail spelling == original).
        for earlier in rows[0:2]:
            assert earlier.values["name"] in third_detail

    def test_similar_names_stride(self):
        quirks = Quirks(similar_names=1, similar_names_stride=2)
        site = GeneratedSite(simple_spec(quirks=quirks))
        details = site.detail_pages(0)
        assert "Similar Records" in details[0].html
        assert "Similar Records" not in details[1].html

    def test_planted_mentions(self):
        quirks = Quirks(
            planted_mentions=(
                PlantedMention(
                    page=0, field="name", source_record=3, target_records=(0,)
                ),
            )
        )
        site = GeneratedSite(simple_spec(quirks=quirks))
        source_name = site.truth[0].rows[3].values["name"]
        assert source_name in site.detail_pages(0)[0].html

    def test_duplicate_boilerplate_repeats_chrome(self):
        site = GeneratedSite(simple_spec(quirks=Quirks(duplicate_boilerplate=True)))
        html = site.list_pages[0].html
        assert html.count("Matching Listings") == 2
        assert html.count("Copyright 2004.") >= 2

    def test_ad_contamination_quotes_mid_list_records(self):
        quirks = Quirks(ad_contamination=(0,))
        site = GeneratedSite(simple_spec(quirks=quirks))
        html = site.list_pages[0].html
        quoted = site.truth[0].rows[2].values["name"]  # n//2 of 4
        assert html.count(quoted) >= 2  # once in the ad, once in the row

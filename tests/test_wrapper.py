"""Tests for wrapper induction, application and serialization."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core.exceptions import ExtractionError
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.domains.propertytax import build_allegheny
from repro.sitegen.domains.whitepages import build_sprint_canada
from repro.sitegen.site import GeneratedSite
from repro.webdoc.page import Page
from repro.wrapper import (
    apply_wrapper,
    induce_wrapper,
    score_wrapped_rows,
)
from repro.wrapper.serialize import (
    WRAPPER_FORMAT_VERSION,
    WrapperFormatError,
    wrapper_from_dict,
    wrapper_to_dict,
)


def three_page_site(builder, counts=(12, 12, 9)):
    spec = dataclasses.replace(builder(), records_per_page=counts)
    return GeneratedSite(spec)


@pytest.fixture(scope="module")
def trained():
    """A wrapper induced from a 2-page sample of a 3-page site."""
    site = three_page_site(build_allegheny)
    run = SegmentationPipeline("prob").segment_site(
        site.list_pages[:2],
        [site.detail_pages(0), site.detail_pages(1)],
    )
    wrapper = induce_wrapper(run.pages[0], run.template_verdict)
    return site, run, wrapper


class TestInduce:
    def test_boundary_learned(self, trained):
        _, _, wrapper = trained
        assert wrapper.boundary  # non-empty tag pattern
        assert all(tag.startswith("<") for tag in wrapper.boundary)

    def test_column_profiles_shape(self, trained):
        _, _, wrapper = trained
        assert wrapper.column_profiles.shape[1] == 8
        assert wrapper.k >= 4

    def test_template_carried(self, trained):
        _, run, wrapper = trained
        assert wrapper.table_slot_id == run.template_verdict.table_slot_id

    def test_empty_segmentation_raises(self, trained):
        site, run, _ = trained
        empty_run = dataclasses.replace(run.pages[0])
        empty_run.segmentation = dataclasses.replace(
            run.pages[0].segmentation
        ) if dataclasses.is_dataclass(run.pages[0].segmentation) else None
        from repro.core.results import Segmentation

        empty_run.segmentation = Segmentation(
            method="prob", records=[], table=run.pages[0].table
        )
        with pytest.raises(ExtractionError):
            induce_wrapper(empty_run, run.template_verdict)


class TestApply:
    def test_unseen_page_extracted_without_details(self, trained):
        site, _, wrapper = trained
        rows = apply_wrapper(wrapper, site.list_pages[2])
        correct, total = score_wrapped_rows(rows, site.truth[2])
        assert total == 9
        assert correct >= total - 1

    def test_row_columns_non_decreasing(self, trained):
        site, _, wrapper = trained
        rows = apply_wrapper(wrapper, site.list_pages[2])
        assert rows
        for row in rows:
            assert len(row.columns) == len(row.extracts)
            assert all(a <= b for a, b in zip(row.columns, row.columns[1:]))

    def test_foreign_page_yields_nothing(self, trained):
        _, _, wrapper = trained
        foreign = Page("f", "<html><body><p>nothing tabular</p></body></html>")
        assert apply_wrapper(wrapper, foreign) == []

    def test_wrapper_generalizes_across_sites(self):
        site = three_page_site(build_sprint_canada, counts=(10, 10, 7))
        run = SegmentationPipeline("prob").segment_site(
            site.list_pages[:2],
            [site.detail_pages(0), site.detail_pages(1)],
        )
        wrapper = induce_wrapper(run.pages[0], run.template_verdict)
        rows = apply_wrapper(wrapper, site.list_pages[2])
        correct, total = score_wrapped_rows(rows, site.truth[2])
        assert correct >= total - 1


class TestSerialize:
    def test_dict_form_is_json_safe(self, trained):
        _, _, wrapper = trained
        data = wrapper_to_dict(wrapper)
        # The whole point of the dict form: it survives JSON, which is
        # what the disk-backed wrapper registry relies on.
        assert json.loads(json.dumps(data)) == data
        assert data["version"] == WRAPPER_FORMAT_VERSION

    def test_round_trip_preserves_structure(self, trained):
        _, _, wrapper = trained
        revived = wrapper_from_dict(wrapper_to_dict(wrapper))
        assert revived.table_slot_id == wrapper.table_slot_id
        assert revived.boundary == wrapper.boundary
        assert revived.template.page_count == wrapper.template.page_count
        assert revived.template.aligned == wrapper.template.aligned
        assert np.array_equal(
            revived.column_profiles, wrapper.column_profiles
        )

    def test_round_trip_extracts_identically(self, trained):
        site, _, wrapper = trained
        revived = wrapper_from_dict(
            json.loads(json.dumps(wrapper_to_dict(wrapper)))
        )
        original = apply_wrapper(wrapper, site.list_pages[2])
        rebuilt = apply_wrapper(revived, site.list_pages[2])
        assert [row.texts for row in rebuilt] == [
            row.texts for row in original
        ]
        assert [row.columns for row in rebuilt] == [
            row.columns for row in original
        ]

    def test_unknown_version_rejected(self, trained):
        _, _, wrapper = trained
        data = wrapper_to_dict(wrapper)
        data["version"] = WRAPPER_FORMAT_VERSION + 1
        with pytest.raises(WrapperFormatError):
            wrapper_from_dict(data)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("template"),
            lambda d: d.pop("boundary"),
            lambda d: d.pop("column_profiles"),
            lambda d: d["template"].pop("aligned"),
            lambda d: d["template"]["aligned"][0].pop("positions"),
            lambda d: d.__setitem__("column_profiles", "oops"),
        ],
    )
    def test_malformed_dict_rejected(self, trained, mutate):
        _, _, wrapper = trained
        data = wrapper_to_dict(wrapper)
        mutate(data)
        with pytest.raises(WrapperFormatError):
            wrapper_from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(WrapperFormatError):
            wrapper_from_dict(["not", "a", "dict"])

"""Tests for the Cor/InC/FN/FP scorer against controlled truths."""

from __future__ import annotations

import pytest

from repro.core.evaluation import PageScore, ScoreCard, score_page, truth_assignment
from repro.core.results import Segmentation
from repro.extraction.extracts import Extract
from repro.extraction.observations import Observation, ObservationTable
from repro.sitegen.site import ListPageTruth, TrueRow
from repro.tokens.tokenizer import tokenize_text


def build_scene(row_extracts):
    """Build a table + truth where record j's extracts sit in span
    [j*100, j*100+99] and each extract matches detail j."""
    extracts, observations, rows = [], [], []
    for record_index, texts in enumerate(row_extracts):
        for offset, text in enumerate(texts):
            start = record_index * 100 + offset * 10
            tokens = []
            for token in tokenize_text(text):
                tokens.append(
                    type(token)(
                        text=token.text,
                        types=token.types,
                        index=token.index,
                        ws_before=token.ws_before,
                        start=start,
                    )
                )
            extract = Extract(
                index=len(extracts),
                tokens=tuple(tokens),
                start_token_index=len(extracts),
            )
            extracts.append(extract)
            observations.append(
                Observation(
                    extract=extract,
                    seq=len(observations),
                    detail_pages=frozenset({record_index}),
                    positions={record_index: (offset,)},
                )
            )
        rows.append(
            TrueRow(
                record_index=record_index,
                record_id=f"r{record_index}",
                values={},
                detail_url=f"d{record_index}.html",
                span=(record_index * 100, record_index * 100 + 99),
            )
        )
    table = ObservationTable(
        extracts=extracts,
        observations=observations,
        detail_count=len(row_extracts),
    )
    truth = ListPageTruth(page_index=0, rows=tuple(rows))
    return table, truth


def segment(table, assignment):
    return Segmentation.from_assignment("test", table, assignment)


class TestScoring:
    def test_perfect_segmentation(self):
        table, truth = build_scene([["a", "b"], ["c", "d"]])
        score = score_page(segment(table, {0: 0, 1: 0, 2: 1, 3: 1}), truth)
        assert score.as_row() == (2, 0, 0, 0)

    def test_merged_records_are_incorrect(self):
        table, truth = build_scene([["a", "b"], ["c", "d"]])
        score = score_page(segment(table, {0: 0, 1: 0, 2: 0, 3: 0}), truth)
        assert score.as_row() == (0, 2, 0, 0)

    def test_split_record_is_incorrect(self):
        table, truth = build_scene([["a", "b"]])
        score = score_page(segment(table, {0: 0, 1: 1}), truth)
        assert score.as_row() == (0, 1, 0, 0)

    def test_untouched_record_is_fn(self):
        table, truth = build_scene([["a", "b"], ["c", "d"]])
        score = score_page(segment(table, {0: 0, 1: 0, 2: None, 3: None}), truth)
        assert score.as_row() == (1, 0, 1, 0)

    def test_partially_dropped_record_is_inc(self):
        table, truth = build_scene([["a", "b"], ["c", "d"]])
        score = score_page(segment(table, {0: 0, 1: 0, 2: 1, 3: None}), truth)
        assert score.as_row() == (1, 1, 0, 0)

    def test_polluted_record_is_inc(self):
        # Record 0's extracts plus one of record 1's in the same
        # predicted record.
        table, truth = build_scene([["a", "b"], ["c", "d"]])
        score = score_page(segment(table, {0: 0, 1: 0, 2: 0, 3: 1}), truth)
        assert score.cor == 0
        assert score.inc == 2

    def test_rows_sum_to_record_count(self):
        table, truth = build_scene([["a"], ["b"], ["c"], ["d"]])
        score = score_page(segment(table, {0: 0, 1: 0, 2: 2, 3: None}), truth)
        assert score.cor + score.inc + score.fn == 4


class TestFalsePositives:
    def test_junk_only_record_is_fp(self):
        table, truth = build_scene([["a"], ["b"]])
        # Add a junk observation outside every row span.
        junk_tokens = tuple(
            type(t)(
                text=t.text, types=t.types, index=t.index,
                ws_before=t.ws_before, start=5000,
            )
            for t in tokenize_text("junk")
        )
        junk = Extract(index=99, tokens=junk_tokens, start_token_index=99)
        table.extracts.append(junk)
        table.observations.append(
            Observation(
                extract=junk, seq=2,
                detail_pages=frozenset({1}), positions={1: (9,)},
            )
        )
        score = score_page(segment(table, {0: 0, 1: 1, 2: 0}), truth)
        # Wait: junk went into record 0 along with a's extract, so r0
        # is polluted, not a pure FP.
        assert score.fp == 0
        assert score.inc >= 1

        score2 = score_page(segment(table, {0: 0, 1: 1, 2: 3}), truth)
        assert score2.fp == 1
        assert score2.cor == 2


class TestMetrics:
    def test_precision_recall_f(self):
        score = PageScore(cor=8, inc=2, fn=2, fp=0)
        assert score.precision == pytest.approx(0.8)
        assert score.recall == pytest.approx(0.8)
        assert score.f_measure == pytest.approx(0.8)

    def test_zero_denominators(self):
        empty = PageScore()
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f_measure == 0.0

    def test_addition(self):
        total = PageScore(1, 2, 3, 4) + PageScore(10, 20, 30, 40)
        assert total.as_row() == (11, 22, 33, 44)

    def test_scorecard_total(self):
        card = ScoreCard()
        card.add(PageScore(cor=3))
        card.add(PageScore(cor=4, inc=1))
        assert card.total.cor == 7
        assert card.total.inc == 1


class TestTruthAssignment:
    def test_extract_mapped_by_span(self):
        table, truth = build_scene([["a"], ["b"]])
        mapping = truth_assignment(table, truth)
        assert mapping == {0: 0, 1: 1}

    def test_offsets_outside_spans_are_none(self):
        table, truth = build_scene([["a"]])
        junk_tokens = tuple(
            type(t)(
                text=t.text, types=t.types, index=t.index,
                ws_before=t.ws_before, start=9999,
            )
            for t in tokenize_text("junk")
        )
        table.observations.append(
            Observation(
                extract=Extract(index=5, tokens=junk_tokens, start_token_index=5),
                seq=1,
                detail_pages=frozenset({0}),
                positions={0: (1,)},
            )
        )
        mapping = truth_assignment(table, truth)
        assert mapping[1] is None

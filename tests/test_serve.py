"""Tests for the online segmentation service (transport-free layer).

Covers payload parsing, the cold/warm/drift request flow of
:class:`~repro.serve.service.SegmentationService`, drift scoring, and
the :class:`~repro.serve.registry.WrapperRegistry` (two-tier lookup,
disk persistence across service restarts, concurrent access).
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.core.pipeline import SegmentationPipeline
from repro.serve import (
    SegmentationService,
    ServeError,
    ServiceConfig,
    WrapperRegistry,
    payload_from_pages,
    wrapped_page_quality,
)
from repro.serve.schema import PayloadError, pages_from_payload
from repro.runner.cache import StageCache
from repro.sitegen.corpus import build_site
from repro.sitegen.site import GeneratedSite, RowLayout
from repro.wrapper import apply_wrapper, induce_wrapper


def site_payload(site, name, method=None):
    return payload_from_pages(
        name,
        site.list_pages,
        [site.detail_pages(index) for index in range(len(site.list_pages))],
        method=method,
    )


@pytest.fixture(scope="module")
def ohio():
    return build_site("ohio")


@pytest.fixture(scope="module")
def ohio_payload(ohio):
    return site_payload(ohio, "ohio")


@pytest.fixture(scope="module")
def trained_wrapper(ohio):
    run = SegmentationPipeline("prob").segment_site(
        ohio.list_pages,
        [ohio.detail_pages(index) for index in range(len(ohio.list_pages))],
    )
    sample = next(page for page in run.pages if page.segmentation.records)
    return induce_wrapper(sample, run.template_verdict)


class TestPayloadParsing:
    def test_round_trip(self, ohio, ohio_payload):
        site_id, list_pages, details = pages_from_payload(ohio_payload)
        assert site_id == "ohio"
        assert len(list_pages) == len(ohio.list_pages)
        assert [page.html for page in list_pages] == [
            page.html for page in ohio.list_pages
        ]
        assert [len(pages) for pages in details] == [
            len(ohio.detail_pages(index)) for index in range(len(list_pages))
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"site": "x"},
            {"site": "", "pages": [{"list": "<html>"}]},
            {"site": "x", "pages": []},
            {"site": "x", "pages": ["nope"]},
            {"site": "x", "pages": [{"details": []}]},
            {"site": "x", "pages": [{"list": 7}]},
            {"site": "x", "pages": [{"list": "<html>", "details": [3]}]},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(PayloadError):
            pages_from_payload(payload)

    def test_bad_payload_maps_to_400(self):
        service = SegmentationService(ServiceConfig())
        with pytest.raises(ServeError) as excinfo:
            service.segment({"site": "x"})
        assert excinfo.value.status == 400

    def test_unknown_method_maps_to_400(self, ohio_payload):
        service = SegmentationService(ServiceConfig())
        payload = dict(ohio_payload, method="astrology")
        with pytest.raises(ServeError) as excinfo:
            service.segment(payload)
        assert excinfo.value.status == 400


class TestRequestFlow:
    def test_cold_then_warm_identical_records(self, ohio_payload):
        service = SegmentationService(ServiceConfig(method="prob"))
        cold = service.segment(ohio_payload)
        warm = service.segment(ohio_payload)
        assert cold["path"] == "pipeline"
        assert warm["path"] == "wrapper"
        assert cold["pages"] == warm["pages"]
        assert warm["record_count"] > 0
        assert not warm["drift"]["drifted"]
        counters = service.metrics_dict()["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.wrapper_hits"] == 1
        assert counters["serve.pipeline_runs"] == 1

    def test_trace_ids_unique_and_echoed(self, ohio_payload):
        service = SegmentationService(ServiceConfig(method="prob"))
        first = service.segment(ohio_payload)
        second = service.segment(ohio_payload, trace_id="deadbeef")
        assert first["trace_id"]
        assert second["trace_id"] == "deadbeef"

    def test_drifted_site_falls_back_and_reinduces(self, ohio, ohio_payload):
        service = SegmentationService(ServiceConfig(method="prob"))
        service.segment(ohio_payload)  # induce wrapper
        redesigned = GeneratedSite(
            dataclasses.replace(ohio.spec, layout=RowLayout.BLOCKS)
        )
        drifted = service.segment(site_payload(redesigned, "ohio"))
        assert drifted["path"] == "pipeline"
        assert drifted["drift"]["drifted"]
        assert drifted["record_count"] > 0
        # Re-induction healed the registry: the redesigned layout now
        # answers from the wrapper.
        healed = service.segment(site_payload(redesigned, "ohio"))
        assert healed["path"] == "wrapper"
        assert healed["pages"] == drifted["pages"]
        counters = service.metrics_dict()["counters"]
        assert counters["serve.fallbacks"] == 1
        assert counters["serve.reinductions"] == 1

    def test_per_method_wrappers_are_independent(self, ohio_payload):
        service = SegmentationService(ServiceConfig(method="prob"))
        service.segment(ohio_payload)
        csp = service.segment(dict(ohio_payload, method="csp"))
        assert csp["path"] == "pipeline"  # no wrapper for csp yet

    def test_sleep_hook(self):
        service = SegmentationService(ServiceConfig())
        response = service.segment({"_sleep": 0.0})
        assert response["path"] == "sleep"


class TestDriftScore:
    def test_empty_rows_score_zero(self, ohio):
        assert wrapped_page_quality([], ohio.detail_pages(0)) == 0.0

    def test_healthy_page_scores_high(self, ohio, trained_wrapper):
        rows = apply_wrapper(trained_wrapper, ohio.list_pages[0])
        score = wrapped_page_quality(rows, ohio.detail_pages(0))
        assert score >= 0.75

    def test_foreign_details_score_low(self, ohio, trained_wrapper):
        rows = apply_wrapper(trained_wrapper, ohio.list_pages[0])
        foreign = build_site("amazon").detail_pages(0)
        score = wrapped_page_quality(rows, foreign)
        assert score < 0.5

    def test_no_details_trusts_any_rows(self, ohio, trained_wrapper):
        rows = apply_wrapper(trained_wrapper, ohio.list_pages[0])
        assert wrapped_page_quality(rows, []) == 1.0


class TestWrapperRegistry:
    def test_memory_round_trip(self, trained_wrapper):
        registry = WrapperRegistry()
        assert registry.get("ohio", "prob") is None
        registry.put("ohio", "prob", trained_wrapper)
        assert registry.get("ohio", "prob") is trained_wrapper
        assert registry.get("ohio", "csp") is None  # method is part of key
        assert len(registry) == 1
        assert registry.sites() == ["ohio"]

    def test_invalidate(self, trained_wrapper):
        registry = WrapperRegistry()
        registry.put("ohio", "prob", trained_wrapper)
        assert registry.invalidate("ohio", "prob")
        assert not registry.invalidate("ohio", "prob")
        assert registry.get("ohio", "prob") is None

    def test_disk_tier_survives_restart(self, tmp_path, trained_wrapper, ohio):
        first = WrapperRegistry(cache=StageCache(tmp_path / "wrappers"))
        first.put("ohio", "prob", trained_wrapper)
        # A fresh registry over the same directory (a server restart).
        second = WrapperRegistry(cache=StageCache(tmp_path / "wrappers"))
        revived = second.get("ohio", "prob")
        assert revived is not None
        assert revived.boundary == trained_wrapper.boundary
        assert apply_wrapper(revived, ohio.list_pages[0])

    def test_disk_persistence_through_service(self, tmp_path, ohio_payload):
        config = ServiceConfig(
            method="prob", wrapper_cache_dir=str(tmp_path / "wrappers")
        )
        SegmentationService(config).segment(ohio_payload)
        # A brand-new service process answers warm straight away.
        restarted = SegmentationService(config)
        assert restarted.segment(ohio_payload)["path"] == "wrapper"

    def test_concurrent_access(self, trained_wrapper, tmp_path):
        registry = WrapperRegistry(cache=StageCache(tmp_path / "wrappers"))
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for round_index in range(25):
                    site = f"site{(worker + round_index) % 5}"
                    registry.put(site, "prob", trained_wrapper)
                    got = registry.get(site, "prob")
                    assert got is not None
                    registry.invalidate(site, "prob")
                    registry.sites()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestHealth:
    def test_health_shape(self, ohio_payload):
        service = SegmentationService(ServiceConfig(method="prob"))
        service.segment(ohio_payload)
        body = service.health(queue_depth=0)
        assert body["status"] == "ok"
        assert body["sites_cached"] == 1
        assert body["queue_depth"] == 0
        assert body["uptime_s"] >= 0


class TestServiceGraph:
    """The service's request paths are entry points into SERVICE_GRAPH."""

    def test_graph_declares_the_three_serve_stages(self):
        from repro.serve.service import SERVICE_GRAPH

        assert "apply" in SERVICE_GRAPH
        assert "pipeline" in SERVICE_GRAPH
        assert "induce" in SERVICE_GRAPH
        assert SERVICE_GRAPH.stage("apply").span == "serve.apply"
        assert SERVICE_GRAPH.stage("pipeline").span == "serve.pipeline"
        assert SERVICE_GRAPH.stage("induce").deps == ("pipeline",)

    def test_warm_apply_entry_point_counts_outcome(self, ohio_payload):
        service = SegmentationService(ServiceConfig(method="prob"))
        cold = service.segment(ohio_payload)
        warm = service.segment(ohio_payload)
        assert cold["path"] == "pipeline" and warm["path"] == "wrapper"
        counters = service.metrics_dict()["counters"]
        assert counters["serve.wrapper_hits"] == 1
        assert counters["serve.pipeline_runs"] == 1
        # The post-induction apply on the cold path runs the same
        # graph stage but books no warm-path outcome counter.
        assert counters.get("serve.fallbacks", 0) == 0

"""Tests for the observability layer (`repro.obs`).

Covers span nesting, deterministic timing via the fake clock, the
metrics registry's JSON round-trip and thread safety, the global
install/current mechanism, and — end to end — the span tree and
solver counters a pipeline run over a small generated site produces,
including byte-identical traces across two runs.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.core.pipeline import SegmentationPipeline
from repro.crawl.crawler import crawl_site
from repro.obs import (
    NULL_OBS,
    ManualClock,
    MetricsRegistry,
    Observability,
    SystemClock,
    Tracer,
    current,
    install,
    render_breakdown,
)
from repro.sitegen.corpus import build_site


@pytest.fixture
def lee_site():
    """The smallest clean corpus site (CSP solves it at STRICT)."""
    return build_site("lee")


class TestManualClock:
    def test_explicit_advance(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_tick_charges_every_read(self):
        clock = ManualClock(start=10.0, tick=1.0)
        assert [clock.now(), clock.now(), clock.now()] == [10.0, 11.0, 12.0]

    def test_cannot_move_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        (outer,) = tracer.roots
        assert [child.name for child in outer.children] == [
            "inner_a",
            "inner_b",
        ]
        assert not outer.children[0].children

    def test_sibling_roots(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_deterministic_under_fake_clock(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots
        (inner,) = outer.children
        # Reads: outer-start=0, inner-start=1, inner-end=2, outer-end=3.
        assert inner.duration == 1.0
        assert outer.duration == 3.0

    def test_span_survives_exceptions(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.end is not None
        assert tracer.current is None

    def test_attributes_render_in_order(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("stage", b=2) as span:
            span.attributes["a"] = 1
        assert tracer.render() == "stage  1.000000s  b=2 a=1"

    def test_find_by_name(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert tracer.find("missing") == []

    def test_registry_histograms_span_durations(self):
        registry = MetricsRegistry()
        tracer = Tracer(clock=ManualClock(tick=1.0), registry=registry)
        with tracer.span("stage"):
            pass
        histogram = registry.histogram("span.stage.seconds")
        assert histogram.count == 1
        assert histogram.total == 1.0

    def test_keep_spans_false_times_without_retaining(self):
        registry = MetricsRegistry()
        tracer = Tracer(
            clock=ManualClock(tick=1.0), registry=registry, keep_spans=False
        )
        with tracer.span("stage"):
            pass
        assert tracer.roots == []
        assert registry.histogram("span.stage.seconds").count == 1


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")
        registry.histogram("y")
        with pytest.raises(ValueError):
            registry.counter("y")

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (1.0, 3.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 2,
            "total": 4.0,
            "mean": 2.0,
            "min": 1.0,
            "max": 3.0,
        }

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(7)
        registry.counter("a.count").inc(1)
        registry.histogram("z.seconds").observe(0.25)
        decoded = json.loads(registry.to_json())
        assert decoded == registry.as_dict()
        assert list(decoded["counters"]) == ["a.count", "b.count"]
        assert decoded["histograms"]["z.seconds"]["count"] == 1

    def test_thread_safety_exact_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000

    def test_render_breakdown_orders_by_total(self):
        registry = MetricsRegistry()
        registry.histogram("span.fast.seconds").observe(0.1)
        registry.histogram("span.slow.seconds").observe(5.0)
        registry.counter("csp.wsat.flips").inc(3)
        text = render_breakdown(registry)
        assert text.index("span.slow") < text.index("span.fast")
        assert "csp.wsat.flips" in text

    def test_empty_breakdown(self):
        assert render_breakdown(MetricsRegistry()) == "(no metrics recorded)"


class TestInstall:
    def test_default_is_null(self):
        assert current() is NULL_OBS
        assert not NULL_OBS.enabled

    def test_install_and_restore(self):
        obs = Observability()
        previous = install(obs)
        try:
            assert current() is obs
        finally:
            install(previous)
        assert current() is NULL_OBS

    def test_null_obs_records_nothing(self):
        with NULL_OBS.span("stage", n=1) as span:
            span.attributes["extra"] = 2  # must not raise
        NULL_OBS.counter("hits").inc(5)
        assert NULL_OBS.tracer.roots == []
        assert NULL_OBS.metrics.as_dict() == {"counters": {}, "histograms": {}}

    def test_default_observability_uses_system_clock(self):
        assert isinstance(Observability().clock, SystemClock)


class TestPipelineTracing:
    def expected_tree(self):
        """The span-name skeleton for a 2-list-page clean CSP run."""
        page = ["pipeline.extracts", "pipeline.observations", "pipeline.segment"]
        return {
            "pipeline.segment_site": ["pipeline.template", "pipeline.page",
                                      "pipeline.page"],
            "pipeline.page": page,
            "pipeline.segment": ["csp.segment"],
            "csp.segment": ["csp.level"],
        }

    def run(self, site, seed_obs=None):
        obs = seed_obs or Observability(clock=ManualClock(tick=1.0))
        SegmentationPipeline("csp", obs=obs).segment_generated_site(site)
        return obs

    def test_expected_span_tree(self, lee_site):
        obs = self.run(lee_site)
        (root,) = obs.tracer.roots
        assert root.name == "pipeline.segment_site"
        expected = self.expected_tree()
        assert [c.name for c in root.children] == expected["pipeline.segment_site"]
        for page_span in root.children[1:]:
            assert [c.name for c in page_span.children] == expected["pipeline.page"]
            segment_span = page_span.children[-1]
            (csp_span,) = segment_span.children
            assert csp_span.name == "csp.segment"
            assert csp_span.attributes["level"] == "STRICT"
            assert csp_span.attributes["solution_found"] is True

    def test_counts_in_attributes(self, lee_site):
        obs = self.run(lee_site)
        (root,) = obs.tracer.roots
        assert root.attributes["pages"] == 2
        extracts = obs.tracer.find("pipeline.extracts")
        assert all(span.attributes["count"] > 0 for span in extracts)
        observations = obs.tracer.find("pipeline.observations")
        assert all(span.attributes["observations"] > 0 for span in observations)

    def test_solver_counters_recorded(self, lee_site):
        obs = self.run(lee_site)
        counters = obs.metrics.as_dict()["counters"]
        assert counters["csp.wsat.solves"] == 2
        assert counters["csp.wsat.restarts"] >= 2
        assert counters["csp.wsat.unsat_constraints"] == 0
        assert counters["pipeline.records"] == 21
        assert counters["pipeline.sites"] == 1

    def test_stage_histograms_recorded(self, lee_site):
        obs = self.run(lee_site)
        histograms = obs.metrics.as_dict()["histograms"]
        assert histograms["span.pipeline.segment.seconds"]["count"] == 2
        assert histograms["span.pipeline.segment_site.seconds"]["count"] == 1

    def test_traces_byte_identical_across_runs(self, lee_site):
        first = self.run(lee_site).tracer.render()
        second = self.run(build_site("lee")).tracer.render()
        assert first == second
        assert "pipeline.segment_site" in first

    def test_metrics_byte_identical_across_runs(self, lee_site):
        first = self.run(lee_site).metrics.to_json()
        second = self.run(build_site("lee")).metrics.to_json()
        assert first == second

    def test_page_run_elapsed_uses_obs_clock(self, lee_site):
        obs = Observability(clock=ManualClock(tick=1.0))
        run = SegmentationPipeline("csp", obs=obs).segment_generated_site(
            lee_site
        )
        # Deterministic tick clock: elapsed is an exact integer of reads.
        assert all(
            page_run.elapsed == int(page_run.elapsed) and page_run.elapsed > 0
            for page_run in run.pages
        )

    def test_uninstrumented_run_unaffected(self, lee_site):
        run = SegmentationPipeline("csp").segment_generated_site(lee_site)
        assert len(run.pages) == 2
        assert current() is NULL_OBS


class TestCrawlTracing:
    def test_crawl_site_span_mirrors_health(self, lee_site):
        obs = Observability(clock=ManualClock(tick=1.0))
        crawl = crawl_site(lee_site, obs=obs)
        (span,) = obs.tracer.find("crawl.site")
        assert span.attributes["requests"] == crawl.health.requests
        assert span.attributes["gaps"] == crawl.health.gap_count
        assert len(span.children) == len(lee_site.list_pages)
        assert obs.metrics.as_dict()["counters"]["crawl.requests"] == (
            crawl.health.requests
        )


class TestCliObsFlags:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_trace_prints_span_tree(self):
        code, output = self.run_cli(
            "segment", "lee", "--method", "csp", "--trace"
        )
        assert code == 0
        assert "pipeline.segment_site" in output
        assert "├─ pipeline.template" in output
        assert "csp.level" in output

    def test_metrics_out_writes_registry(self, tmp_path):
        path = tmp_path / "metrics.json"
        code, output = self.run_cli(
            "segment", "lee", "--method", "csp", "--metrics-out", str(path)
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert "csp.wsat.flips" in payload["counters"]
        assert "csp.wsat.restarts" in payload["counters"]
        assert payload["counters"]["pipeline.pages"] == 2

    def test_without_flags_no_trace_output(self):
        code, output = self.run_cli("segment", "lee", "--method", "csp")
        assert "pipeline.segment_site" not in output


class TestCrossProcessMerge:
    """MetricsRegistry / Tracer state crossing process boundaries."""

    def test_registry_merge_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(2)
        a.histogram("h").observe(1.0)
        b.counter("x").inc(3)
        b.counter("y").inc(1)
        b.histogram("h").observe(3.0)
        a.merge(b)
        snap = a.as_dict()
        assert snap["counters"] == {"x": 5, "y": 1}
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["total"] == 4.0
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0
        assert snap["histograms"]["h"]["mean"] == 2.0

    def test_registry_merge_snapshot_dict(self):
        source = MetricsRegistry()
        source.counter("c").inc(7)
        source.histogram("h").observe(0.5)
        target = MetricsRegistry()
        target.merge(source.as_dict())  # the picklable plain-dict form
        assert target.as_dict()["counters"]["c"] == 7
        assert target.as_dict()["histograms"]["h"]["count"] == 1

    def test_snapshot_is_plain_json_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(2.5)
        # round-trips through JSON: no locks, no live objects
        assert json.loads(json.dumps(registry.as_dict())) == registry.as_dict()

    def test_registry_pickles_despite_locks(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.histogram("h").observe(1.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.as_dict() == registry.as_dict()
        # The clone is live: its rebuilt locks accept new updates.
        clone.counter("c").inc()
        assert clone.as_dict()["counters"]["c"] == 5

    def test_merge_is_associative_enough_for_workers(self):
        parts = []
        for value in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(value)
            parts.append(registry.as_dict())
        left, right = MetricsRegistry(), MetricsRegistry()
        for snapshot in parts:
            left.merge(snapshot)
        for snapshot in reversed(parts):
            right.merge(snapshot)
        assert left.as_dict() == right.as_dict()

    def test_tracer_merge_from_dicts(self):
        clock = ManualClock()
        remote = Tracer(clock)
        with remote.span("runner.task", task="lee"):
            clock.advance(1.5)
            with remote.span("pipeline.segment_site"):
                clock.advance(0.5)
        local = Tracer(ManualClock())
        local.merge(remote.to_dict())
        (root,) = local.roots
        assert root.name == "runner.task"
        assert root.duration == pytest.approx(2.0)
        (child,) = root.children
        assert child.name == "pipeline.segment_site"
        assert local.find("pipeline.segment_site")
        assert "runner.task" in local.render()

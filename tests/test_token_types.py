"""Unit + property tests for the eight syntactic token types."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tokens.types import (
    NUM_TOKEN_TYPES,
    TOKEN_TYPE_ORDER,
    TokenType,
    classify_text,
    type_vector,
)


class TestClassification:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("Smith", TokenType.ALNUM | TokenType.ALPHA | TokenType.CAPITALIZED),
            ("smith", TokenType.ALNUM | TokenType.ALPHA | TokenType.LOWERCASE),
            ("SMITH", TokenType.ALNUM | TokenType.ALPHA | TokenType.ALLCAPS),
            ("740", TokenType.ALNUM | TokenType.NUMERIC),
            ("(740)", TokenType.ALNUM | TokenType.NUMERIC),
            ("335-5555", TokenType.ALNUM | TokenType.NUMERIC),
            ("(", TokenType.PUNCT),
            ("...", TokenType.PUNCT),
            # Single capital letter: capitalized, not allcaps.
            ("W.", TokenType.ALNUM | TokenType.ALPHA | TokenType.CAPITALIZED),
            # Mixed alnum with letters is alpha but numeric needs no letters.
            ("K755-983", TokenType.ALNUM | TokenType.ALPHA | TokenType.CAPITALIZED),
            # Mixed case starting lowercase: alpha only.
            ("iPod", TokenType.ALNUM | TokenType.ALPHA),
            # Mixed case starting uppercase: capitalized.
            ("McDonald", TokenType.ALNUM | TokenType.ALPHA | TokenType.CAPITALIZED),
            ("", TokenType.NONE),
        ],
    )
    def test_examples(self, text, expected):
        assert classify_text(text) == expected

    def test_trailing_punct_does_not_change_class(self):
        assert classify_text("Findlay,") == classify_text("Findlay")

    def test_unicode_letters(self):
        assert TokenType.CAPITALIZED in classify_text("Müller")
        assert TokenType.ALLCAPS in classify_text("MÜLLER")


class TestTypeVector:
    def test_length_and_order(self):
        assert NUM_TOKEN_TYPES == 8
        assert len(TOKEN_TYPE_ORDER) == 8
        vector = type_vector(TokenType.HTML)
        assert vector == (1, 0, 0, 0, 0, 0, 0, 0)

    def test_multiple_flags(self):
        vector = type_vector(classify_text("Smith"))
        # ALNUM, ALPHA, CAPITALIZED set; HTML, PUNCT, NUMERIC, others not.
        assert vector == (0, 0, 1, 0, 1, 1, 0, 0)

    def test_none_is_all_zero(self):
        assert type_vector(TokenType.NONE) == (0,) * 8


class TestProperties:
    @given(st.text(min_size=1, max_size=20))
    def test_every_nonempty_token_has_a_basic_type(self, text):
        types = classify_text(text)
        basic = types & (TokenType.PUNCT | TokenType.ALNUM)
        assert basic != TokenType.NONE

    @given(st.text(min_size=1, max_size=20))
    def test_punct_and_alnum_exclusive(self, text):
        types = classify_text(text)
        assert not (TokenType.PUNCT in types and TokenType.ALNUM in types)

    @given(st.text(min_size=1, max_size=20))
    def test_casing_subtypes_imply_alpha(self, text):
        types = classify_text(text)
        for casing in (TokenType.CAPITALIZED, TokenType.LOWERCASE, TokenType.ALLCAPS):
            if casing in types:
                assert TokenType.ALPHA in types

    @given(st.text(min_size=1, max_size=20))
    def test_at_most_one_casing_subtype(self, text):
        types = classify_text(text)
        count = sum(
            1
            for casing in (
                TokenType.CAPITALIZED,
                TokenType.LOWERCASE,
                TokenType.ALLCAPS,
            )
            if casing in types
        )
        assert count <= 1

    @given(st.text(min_size=1, max_size=20))
    def test_numeric_implies_alnum_and_no_alpha(self, text):
        types = classify_text(text)
        if TokenType.NUMERIC in types:
            assert TokenType.ALNUM in types
            assert TokenType.ALPHA not in types

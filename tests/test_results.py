"""Tests for the shared Segmentation result types."""

from __future__ import annotations

from repro.core.results import Segmentation
from tests.conftest import PAPER_TABLE1, PAPER_TABLE2, build_observation_table


def paper_assignment():
    assignment = {}
    for record, seqs in PAPER_TABLE2.items():
        for seq in seqs:
            assignment[seq] = record
    return assignment


class TestFromAssignment:
    def test_records_grouped_and_ordered(self, paper_table):
        segmentation = Segmentation.from_assignment(
            "test", paper_table, paper_assignment()
        )
        assert [record.record_id for record in segmentation.records] == [0, 1, 2]
        assert segmentation.record_count == 3
        assert not segmentation.is_partial

    def test_unassigned_tracked(self, paper_table):
        assignment = paper_assignment()
        assignment[5] = None
        segmentation = Segmentation.from_assignment(
            "test", paper_table, assignment
        )
        assert [o.seq for o in segmentation.unassigned] == [5]
        assert segmentation.is_partial

    def test_columns_carried(self, paper_table):
        segmentation = Segmentation.from_assignment(
            "test", paper_table, paper_assignment(), columns={0: 0, 1: 1}
        )
        record = segmentation.record_for(0)
        assert record.columns == {0: 0, 1: 1}

    def test_record_for_missing(self, paper_table):
        segmentation = Segmentation.from_assignment(
            "test", paper_table, paper_assignment()
        )
        assert segmentation.record_for(99) is None

    def test_describe_mentions_method(self, paper_table):
        segmentation = Segmentation.from_assignment(
            "test", paper_table, paper_assignment()
        )
        assert "test" in segmentation.describe()
        assert "John Smith" in segmentation.describe()


class TestAttachRest:
    def make_table_with_junk(self):
        """Two anchored extracts with junk before, between and after.

        Page-order extract layout:
            0: "lead junk"  (unmatched)
            1: "anchor-a"   (matches detail 0)
            2: "mid junk"   (unmatched)
            3: "anchor-b"   (matches detail 1)
            4: "tail junk"  (unmatched)
        """
        from repro.extraction.extracts import Extract
        from repro.extraction.observations import Observation, ObservationTable
        from repro.tokens.tokenizer import tokenize_text

        texts = ["lead junk", "anchor-a", "mid junk", "anchor-b", "tail junk"]
        extracts = [
            Extract(
                index=position,
                tokens=tuple(tokenize_text(text)),
                start_token_index=position * 10,
            )
            for position, text in enumerate(texts)
        ]
        observations = [
            Observation(
                extract=extracts[1],
                seq=0,
                detail_pages=frozenset({0}),
                positions={0: (1,)},
            ),
            Observation(
                extract=extracts[3],
                seq=1,
                detail_pages=frozenset({1}),
                positions={1: (2,)},
            ),
        ]
        return ObservationTable(
            extracts=extracts,
            observations=observations,
            detail_count=2,
        )

    def test_rest_attaches_to_last_assigned(self):
        table = self.make_table_with_junk()
        segmentation = Segmentation.from_assignment(
            "test", table, {0: 0, 1: 1}
        )
        first = segmentation.record_for(0)
        second = segmentation.record_for(1)
        # Leading junk attaches to the first record; mid junk to the
        # record of the preceding anchor; tail junk to the last.
        assert "lead junk" in [e.text for e in first.attached]
        assert "mid junk" in [e.text for e in first.attached]
        assert "tail junk" in [e.text for e in second.attached]

    def test_full_texts_in_page_order(self):
        table = self.make_table_with_junk()
        segmentation = Segmentation.from_assignment(
            "test", table, {0: 0, 1: 1}
        )
        first = segmentation.record_for(0)
        assert first.full_texts == ["lead junk", "anchor-a", "mid junk"]

    def test_attach_rest_disabled(self):
        table = self.make_table_with_junk()
        segmentation = Segmentation.from_assignment(
            "test", table, {0: 0, 1: 1}, attach_rest=False
        )
        assert all(not record.attached for record in segmentation.records)

    def test_no_assignment_no_attachment(self):
        table = self.make_table_with_junk()
        segmentation = Segmentation.from_assignment(
            "test", table, {0: None, 1: None}
        )
        assert segmentation.records == []

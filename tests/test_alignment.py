"""Unit + property tests for multi-page alignment and LIS."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.template.alignment import (
    align_pages,
    longest_increasing_subsequence,
)
from repro.tokens.tokenizer import tokenize_html


def lis_brute_force(values):
    """Longest strictly increasing subsequence length by enumeration."""
    best = 0
    for size in range(len(values), 0, -1):
        for combo in itertools.combinations(range(len(values)), size):
            chosen = [values[i] for i in combo]
            if all(a < b for a, b in zip(chosen, chosen[1:])):
                return size
    return best


class TestLis:
    def test_simple(self):
        assert longest_increasing_subsequence([3, 1, 2, 5, 4]) == [1, 2, 4]

    def test_empty(self):
        assert longest_increasing_subsequence([]) == []

    def test_single(self):
        assert longest_increasing_subsequence([7]) == [0]

    def test_already_sorted(self):
        assert longest_increasing_subsequence([1, 2, 3]) == [0, 1, 2]

    def test_reverse_sorted_picks_one(self):
        result = longest_increasing_subsequence([3, 2, 1])
        assert len(result) == 1

    def test_strictness_on_duplicates(self):
        result = longest_increasing_subsequence([2, 2, 2])
        assert len(result) == 1

    @given(st.lists(st.integers(0, 20), max_size=10))
    def test_result_is_increasing_subsequence(self, values):
        indices = longest_increasing_subsequence(values)
        assert indices == sorted(indices)
        chosen = [values[i] for i in indices]
        assert all(a < b for a, b in zip(chosen, chosen[1:]))

    @given(st.lists(st.integers(0, 20), max_size=9))
    def test_result_is_maximal(self, values):
        indices = longest_increasing_subsequence(values)
        if values:
            assert len(indices) == lis_brute_force(values)


def pages(*docs):
    return [tokenize_html(doc) for doc in docs]


class TestAlignPages:
    def test_identical_chrome_different_data(self):
        aligned = align_pages(
            pages(
                "<h1>Results Here</h1><p>Alpha Beta</p>",
                "<h1>Results Here</h1><p>Gamma Delta</p>",
            )
        )
        texts = [token.text for token in aligned]
        assert "Results" in texts and "Here" in texts
        assert "Alpha" not in texts and "Gamma" not in texts

    def test_repeated_tokens_excluded(self):
        # "x" twice on page 0: not unique there, so never template.
        aligned = align_pages(pages("<p>x y x</p>", "<p>x y q</p>"))
        texts = [token.text for token in aligned]
        assert "x" not in texts
        assert "y" in texts

    def test_order_inconsistent_tokens_filtered(self):
        # "a b" on page 0 but "b a" on page 1: only one can survive.
        aligned = align_pages(pages("<p>a b</p>", "<p>b a</p>"))
        texts = [token.text for token in aligned]
        assert len([t for t in texts if t in ("a", "b")]) == 1

    def test_positions_point_at_each_page(self):
        streams = pages("<h1>Top</h1>mid", "<h1>Top</h1>other")
        aligned = align_pages(streams)
        top = next(token for token in aligned if token.text == "Top")
        for page_index, position in enumerate(top.positions):
            assert streams[page_index][position].text == "Top"

    def test_three_pages(self):
        aligned = align_pages(
            pages("<h1>Hdr</h1>a", "<h1>Hdr</h1>b", "<h1>Hdr</h1>c")
        )
        texts = [token.text for token in aligned]
        assert "Hdr" in texts
        assert not any(t in texts for t in "abc")

    def test_no_common_tokens(self):
        assert align_pages(pages("alpha beta", "gamma delta")) == []

    def test_single_page_rejected(self):
        with pytest.raises(ValueError):
            align_pages(pages("only one"))

    def test_is_html_flag(self):
        aligned = align_pages(pages("<h1>T</h1>a", "<h1>T</h1>b"))
        by_text = {token.text: token for token in aligned}
        assert by_text["<h1>"].is_html
        assert not by_text["T"].is_html

    @given(
        st.lists(
            st.sampled_from(["alpha", "beta", "gamma", "delta", "eps"]),
            min_size=0,
            max_size=8,
        ),
        st.lists(
            st.sampled_from(["alpha", "beta", "gamma", "delta", "eps"]),
            min_size=0,
            max_size=8,
        ),
    )
    def test_alignment_order_consistent_on_both_pages(self, words_a, words_b):
        streams = pages(" ".join(words_a), " ".join(words_b))
        aligned = align_pages(streams)
        for page_index in range(2):
            positions = [token.positions[page_index] for token in aligned]
            assert positions == sorted(positions)
            assert len(set(positions)) == len(positions)

"""Tests for the adversarial mixed-corpus sitegen family."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sitegen.mixed import (
    CRAWL_MANIFEST_NAME,
    MixedCorpusSpec,
    build_mixed_corpus,
    load_crawl_pages,
    score_bundles,
    write_crawl,
)
from repro.sitegen.site import RowLayout


@pytest.fixture(scope="module")
def corpus():
    return build_mixed_corpus(MixedCorpusSpec(sites=8, seed=3))


class TestDeterminism:
    def test_same_seed_byte_identical(self, corpus):
        again = build_mixed_corpus(MixedCorpusSpec(sites=8, seed=3))
        assert [page.url for page in again.pages] == [
            page.url for page in corpus.pages
        ]
        assert [page.html for page in again.pages] == [
            page.html for page in corpus.pages
        ]
        assert again.sites == corpus.sites
        assert again.distractor_urls == corpus.distractor_urls

    def test_different_seed_differs(self, corpus):
        other = build_mixed_corpus(MixedCorpusSpec(sites=8, seed=4))
        assert [page.html for page in other.pages] != [
            page.html for page in corpus.pages
        ]

    def test_pages_carry_no_role_hints(self, corpus):
        assert all(page.kind is None for page in corpus.pages)


class TestInvariants:
    def test_template_count(self, corpus):
        # Slot 2 and slot 7 (period 5) carry two templates each.
        spec = corpus.spec
        assert spec.expected_site_count() == 10
        assert len(corpus.sites) == 10
        names = {site.name for site in corpus.sites}
        assert {"mix002a", "mix002b", "mix007a", "mix007b"} <= names

    def test_multi_template_slots_use_distinct_layouts(self, corpus):
        a = corpus.generated["mix002a"].spec
        b = corpus.generated["mix002b"].spec
        assert a.layout != b.layout
        assert {a.layout, b.layout} <= {RowLayout.GRID, RowLayout.FLAT}

    def test_urls_unique(self, corpus):
        urls = [page.url for page in corpus.pages]
        assert len(urls) == len(set(urls))

    def test_truth_and_distractors_partition_the_crawl(self, corpus):
        truth = corpus.truth_urls()
        assert truth.isdisjoint(corpus.distractor_urls)
        assert truth | corpus.distractor_urls == {
            page.url for page in corpus.pages
        }

    def test_orphan_pages_present_and_distinct(self, corpus):
        orphan_urls = {
            f"orphan-{i:03d}.html" for i in range(corpus.spec.orphan_count)
        }
        assert orphan_urls <= corpus.distractor_urls
        orphan_html = [
            page.html for page in corpus.pages if page.url in orphan_urls
        ]
        assert len(orphan_html) == corpus.spec.orphan_count
        # Structurally unique: no two orphans share their markup.
        assert len(set(orphan_html)) == len(orphan_html)

    def test_distractor_ratio_floor(self, corpus):
        assert corpus.distractor_ratio >= 0.25

    def test_portal_pages_for_multi_template_slots(self, corpus):
        by_url = {page.url: page for page in corpus.pages}
        portal = by_url["mix002-portal.html"]
        assert "mix002a-list0.html" in portal.html
        assert "mix002b-list0.html" in portal.html
        assert portal.url in corpus.distractor_urls

    def test_score_bundles_against_truth(self, corpus):
        # Perfect bundles score 1.0/1.0; a polluted bundle loses
        # precision but not recall.
        perfect = [
            (site.name, site.page_urls()) for site in corpus.sites
        ]
        score = score_bundles(corpus.sites, perfect)
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.exact_bundles == len(corpus.sites)
        polluted = [
            (name, urls + ["orphan-000.html"])
            for name, urls in perfect
        ]
        dirty = score_bundles(corpus.sites, polluted)
        assert dirty.precision < 1.0
        assert dirty.recall == 1.0
        assert dirty.exact_bundles == 0


class TestCrawlRoundTrip:
    def test_write_and_load_preserve_order_and_bytes(self, corpus, tmp_path):
        manifest_path = write_crawl(corpus, tmp_path)
        assert manifest_path.name == CRAWL_MANIFEST_NAME
        loaded = load_crawl_pages(tmp_path)
        assert [page.url for page in loaded] == [
            page.url for page in corpus.pages
        ]
        assert [page.html for page in loaded] == [
            page.html for page in corpus.pages
        ]

    def test_manifest_records_truth(self, corpus, tmp_path):
        manifest_path = write_crawl(corpus, tmp_path)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["seed"] == corpus.spec.seed
        assert len(manifest["sites"]) == len(corpus.sites)
        assert set(manifest["distractors"]) == corpus.distractor_urls
        assert manifest["pages"] == [page.url for page in corpus.pages]

    def test_load_without_manifest_sorts_by_name(self, corpus, tmp_path):
        write_crawl(corpus, tmp_path)
        (tmp_path / CRAWL_MANIFEST_NAME).unlink()
        loaded = load_crawl_pages(tmp_path)
        assert [page.url for page in loaded] == sorted(
            page.url for page in corpus.pages
        )

    def test_load_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_crawl_pages(tmp_path)

    def test_export_corpus_cli_round_trip(self, tmp_path, capsys):
        out_dir = tmp_path / "crawl"
        assert main(
            ["export-corpus", str(out_dir), "--mixed", "4", "--seed", "3"]
        ) == 0
        assert "wrote mixed crawl" in capsys.readouterr().out
        loaded = load_crawl_pages(out_dir)
        direct = build_mixed_corpus(MixedCorpusSpec(sites=4, seed=3))
        assert [page.url for page in loaded] == [
            page.url for page in direct.pages
        ]
        assert [page.html for page in loaded] == [
            page.html for page in direct.pages
        ]

    def test_export_corpus_mixed_excludes_sites_flag(self, tmp_path, capsys):
        code = main(
            [
                "export-corpus",
                str(tmp_path),
                "--mixed",
                "2",
                "--sites",
                "ohio",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().out


class TestGenerations:
    @pytest.fixture(scope="class")
    def gen0(self):
        return build_mixed_corpus(MixedCorpusSpec(sites=8, seed=3))

    @pytest.fixture(scope="class")
    def gen1(self):
        return build_mixed_corpus(
            MixedCorpusSpec(sites=8, seed=3, generation=1)
        )

    def test_generation_zero_unaffected(self, corpus, gen0):
        # generation=0 (the default) must be byte-identical to the
        # pre-lifecycle corpus: churn may never perturb the base.
        assert [p.url for p in gen0.pages] == [p.url for p in corpus.pages]
        assert [p.html for p in gen0.pages] == [
            p.html for p in corpus.pages
        ]
        assert gen0.churn is None

    def test_churn_recorded(self, gen1):
        churn = gen1.churn
        assert churn is not None
        assert churn.generation == 1
        assert len(churn.mutated) > 0
        assert len(churn.reskinned) == 1
        assert len(churn.added) == 1
        assert len(churn.removed) == 1
        # Removed and reskinned sites are disjoint sets of plain slots.
        assert not set(churn.removed) & set(churn.reskinned)

    def test_unchanged_pages_byte_identical(self, gen0, gen1):
        before = {p.url: p.html for p in gen0.pages}
        after = {p.url: p.html for p in gen1.pages}
        churn = gen1.churn
        touched = set(churn.mutated)
        for name in churn.reskinned + churn.added + churn.removed:
            touched |= {
                url for url in set(before) | set(after)
                if url.startswith(f"{name}-")
            }
        shared = set(before) & set(after)
        for url in shared - touched:
            assert before[url] == after[url], url

    def test_mutated_pages_differ(self, gen0, gen1):
        before = {p.url: p.html for p in gen0.pages}
        after = {p.url: p.html for p in gen1.pages}
        for url in gen1.churn.mutated:
            assert url in before and url in after
            assert before[url] != after[url]
            assert "Record updated: generation 1" in after[url]

    def test_generations_deterministic(self, gen1):
        again = build_mixed_corpus(
            MixedCorpusSpec(sites=8, seed=3, generation=1)
        )
        assert [p.url for p in again.pages] == [p.url for p in gen1.pages]
        assert [p.html for p in again.pages] == [
            p.html for p in gen1.pages
        ]
        assert again.churn == gen1.churn

    def test_reskinned_site_changes_template(self, gen0, gen1):
        (name,) = gen1.churn.reskinned
        before = gen0.generated[name].spec
        after = gen1.generated[name].spec
        # A reskin picks a different variant: domain and layout pair
        # changes, so every page of the site renders differently.
        assert (before.domain, before.layout) != (
            after.domain,
            after.layout,
        )
        before_pages = {
            p.url: p.html
            for p in gen0.pages
            if p.url.startswith(f"{name}-")
        }
        after_pages = {
            p.url: p.html
            for p in gen1.pages
            if p.url.startswith(f"{name}-")
        }
        # Every templated page re-renders (the slot index page is
        # chrome-only and may survive a reskin byte-identically).
        for url in set(before_pages) & set(after_pages):
            if "-list" in url or "-detail" in url:
                assert before_pages[url] != after_pages[url], url

    def test_manifest_records_generation_and_churn(self, gen1, tmp_path):
        manifest = write_crawl(gen1, tmp_path / "crawl")
        data = json.loads(manifest.read_text(encoding="utf-8"))
        assert data["generation"] == 1
        assert data["churn"]["generation"] == 1
        assert data["churn"]["mutated"] == list(gen1.churn.mutated)

    def test_truth_tracks_churn(self, gen1):
        names = {site.name for site in gen1.sites}
        for name in gen1.churn.removed:
            assert name not in names
        for name in gen1.churn.added:
            assert name in names

"""Tests for the batch-execution engine (runner/)."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs import Observability
from repro.runner import (
    BatchRunner,
    RunManifest,
    RunnerConfig,
    SiteTask,
    TaskRecord,
    execute_task,
    tasks_for_sites,
    tasks_from_directory,
)
from repro.sitegen.corpus import build_site
from repro.webdoc.store import save_sample

SITES = ("lee", "butler", "ohio")


def export_corpus(root, names=SITES):
    for name in names:
        site = build_site(name)
        save_sample(
            root / name,
            name,
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
        )
    return root


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTasks:
    def test_single_sample_dir_is_one_task(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        (task,) = tasks_from_directory(tmp_path / "lee")
        assert task.kind == "sample_dir" and task.task_id == "lee"
        assert task.cost_hint > 0

    def test_corpus_dir_is_one_task_per_subdir(self, tmp_path):
        export_corpus(tmp_path)
        tasks = tasks_from_directory(tmp_path)
        assert sorted(t.task_id for t in tasks) == sorted(SITES)

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            tasks_from_directory(tmp_path)

    def test_fingerprint_tracks_definition(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        (prob,) = tasks_from_directory(tmp_path / "lee", method="prob")
        (csp,) = tasks_from_directory(tmp_path / "lee", method="csp")
        assert prob.fingerprint() != csp.fingerprint()


class TestExecuteTask:
    def test_sample_dir_task(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        (task,) = tasks_from_directory(tmp_path / "lee", method="csp")
        result = execute_task(task)
        assert result.status == "ok"
        assert len(result.pages) == 2  # lee has two list pages
        assert result.record_count > 0
        assert result.metrics["counters"]["pipeline.sites"] == 1

    def test_failure_is_a_result_not_an_exception(self, tmp_path):
        task = SiteTask(
            task_id="gone", kind="sample_dir", spec=str(tmp_path / "gone")
        )
        result = execute_task(task)
        assert result.status == "failed"
        assert "SampleError" in (result.error or "")

    def test_unknown_kind_fails_cleanly(self):
        result = execute_task(SiteTask(task_id="x", kind="nope", spec=""))
        assert result.status == "failed"

    def test_degenerate_sample_is_quarantined(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        for name in ("l0.html", "l1.html"):
            (directory / name).write_text("<html><body></body></html>")
        (directory / "sample.json").write_text(
            json.dumps(
                {
                    "name": "broken",
                    "pages": [
                        {"list": "l0.html", "details": []},
                        {"list": "l1.html", "details": []},
                    ],
                }
            )
        )
        (task,) = tasks_from_directory(directory)
        result = execute_task(task)
        assert result.status == "quarantined"

    def test_trace_collection(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        (task,) = tasks_from_directory(tmp_path / "lee")
        result = execute_task(task, collect_trace=True)
        assert result.trace and result.trace[0]["name"] == "runner.task"


class TestManifest:
    def test_roundtrip_and_latest_wins(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        manifest.write_header(run={"workers": 2}, tasks=2, resumed=False)
        manifest.append_task(
            TaskRecord(task_id="a", fingerprint="f1", status="failed")
        )
        manifest.append_task(
            TaskRecord(task_id="a", fingerprint="f1", status="ok")
        )
        manifest.append_task(
            TaskRecord(task_id="b", fingerprint="f2", status="ok")
        )
        assert manifest.completed() == {"a", "b"}
        assert manifest.completed({"a": "f1"}) == {"a"}  # b unknown now
        # A changed task definition under the same id is not skipped.
        assert manifest.completed({"a": "different"}) == set()

    def test_failed_tasks_are_retried(self, tmp_path):
        manifest = RunManifest(tmp_path / "run.jsonl")
        manifest.append_task(
            TaskRecord(task_id="a", fingerprint="f", status="timeout")
        )
        assert manifest.completed() == set()

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        manifest = RunManifest(path)
        manifest.append_task(
            TaskRecord(task_id="a", fingerprint="f", status="ok")
        )
        with path.open("a") as handle:
            handle.write('{"type": "task", "task_id": "b", "sta')  # killed
        assert manifest.completed() == {"a"}


class TestEngineSerial:
    def test_statuses_digest_and_manifest(self, tmp_path):
        corpus = export_corpus(tmp_path / "corpus")
        tasks = tasks_from_directory(corpus, method="prob")
        manifest_path = tmp_path / "run.jsonl"
        obs = Observability()
        batch = BatchRunner(
            RunnerConfig(manifest_path=str(manifest_path)), obs=obs
        ).run(tasks)
        assert batch.by_status() == {"ok": len(SITES)}
        assert not batch.interrupted
        records = RunManifest(manifest_path).latest_by_task()
        assert set(records) == set(SITES)
        assert all(r["status"] == "ok" for r in records.values())
        # The engine books runner.* metrics and merges worker metrics.
        counters = obs.metrics.as_dict()["counters"]
        assert counters["runner.tasks.ok"] == len(SITES)
        assert counters["pipeline.sites"] == len(SITES)

    def test_cost_ordering_runs_expensive_first(self, tmp_path):
        tasks = [
            SiteTask(task_id="small", kind="_sleep", spec="0", cost_hint=1),
            SiteTask(task_id="big", kind="_sleep", spec="0", cost_hint=9),
        ]
        batch = BatchRunner(RunnerConfig()).run(tasks)
        assert [r.task_id for r in batch.results] == ["big", "small"]

    def test_resume_skips_completed(self, tmp_path):
        corpus = export_corpus(tmp_path / "corpus")
        tasks = tasks_from_directory(corpus, method="prob")
        manifest_path = tmp_path / "run.jsonl"

        # First run is "killed" after one task: run a subset.
        first = BatchRunner(
            RunnerConfig(manifest_path=str(manifest_path))
        ).run(tasks[:1])
        assert len(first.results) == 1

        resumed = BatchRunner(
            RunnerConfig(manifest_path=str(manifest_path), resume=True)
        ).run(tasks)
        assert sorted(resumed.skipped) == [tasks[0].task_id]
        assert len(resumed.results) == len(tasks) - 1

        # A third run has nothing left to do.
        third = BatchRunner(
            RunnerConfig(manifest_path=str(manifest_path), resume=True)
        ).run(tasks)
        assert third.results == [] and len(third.skipped) == len(tasks)

    def test_cache_warm_run_identical(self, tmp_path):
        corpus = export_corpus(tmp_path / "corpus")
        tasks = tasks_from_directory(corpus, method="prob")
        cache_dir = str(tmp_path / "cache")
        cold = BatchRunner(RunnerConfig(cache_dir=cache_dir)).run(tasks)
        warm = BatchRunner(RunnerConfig(cache_dir=cache_dir)).run(tasks)
        assert cold.cache_misses > 0
        assert warm.cache_misses == 0 and warm.cache_hits > 0
        assert cold.digest() == warm.digest()


class TestEngineParallel:
    def test_parallel_matches_serial(self, tmp_path):
        corpus = export_corpus(tmp_path / "corpus", names=("lee", "butler"))
        tasks = tasks_from_directory(corpus, method="prob")
        serial = BatchRunner(RunnerConfig(workers=1)).run(tasks)
        parallel = BatchRunner(RunnerConfig(workers=2)).run(tasks)
        assert parallel.by_status() == serial.by_status() == {"ok": 2}
        assert parallel.digest() == serial.digest()

    def test_stall_watchdog_times_out_hung_tasks(self):
        tasks = [
            SiteTask(task_id=f"sleep{i}", kind="_sleep", spec="30")
            for i in range(2)
        ]
        batch = BatchRunner(
            RunnerConfig(workers=2, stall_timeout=1.0)
        ).run(tasks)
        assert batch.interrupted
        assert all(r.status == "timeout" for r in batch.results)

    def test_worker_kill_records_crashed_and_rebuilds_pool(self, tmp_path):
        # One task SIGKILLs its worker process (an OOM-kill stand-in);
        # the pool breaks, the engine records the casualties as
        # ``crashed``, rebuilds once, and finishes the rest.
        manifest = tmp_path / "run.jsonl"
        tasks = [
            SiteTask(task_id="boom", kind="_kill", spec="", cost_hint=100),
        ] + [
            SiteTask(
                task_id=f"sleep{i}", kind="_sleep", spec="0.05", cost_hint=1
            )
            for i in range(3)
        ]
        obs = Observability()
        batch = BatchRunner(
            RunnerConfig(workers=2, manifest_path=str(manifest)), obs=obs
        ).run(tasks)
        statuses = {r.task_id: r.status for r in batch.results}
        assert statuses["boom"] == "crashed"
        assert not batch.interrupted  # one rebuild is recovery, not failure
        assert obs.counter("runner.pool.crashes").value == 1
        assert obs.counter("runner.pool.rebuilds").value == 1
        # Tasks riding the broken pool are crashed (retryable), the
        # rest completed on the rebuilt pool; nothing is lost.
        assert set(statuses) == {"boom", "sleep0", "sleep1", "sleep2"}
        assert set(statuses.values()) <= {"ok", "crashed"}
        assert any(status == "ok" for status in statuses.values())

    def test_resume_retries_crashed_tasks(self, tmp_path):
        manifest = tmp_path / "run.jsonl"
        tasks = [
            SiteTask(task_id="boom", kind="_kill", spec="", cost_hint=100),
            SiteTask(
                task_id="sleep0", kind="_sleep", spec="0.05", cost_hint=1
            ),
        ]
        config = RunnerConfig(workers=2, manifest_path=str(manifest))
        first = BatchRunner(config).run(tasks)
        assert {r.task_id: r.status for r in first.results}["boom"] == "crashed"

        # Resume with the killer replaced by a task that succeeds (the
        # site was "fixed"); crashed ids re-run, completed ids skip.
        retry_tasks = [
            SiteTask(task_id="boom", kind="_sleep", spec="0.01", cost_hint=100),
            SiteTask(
                task_id="sleep0", kind="_sleep", spec="0.05", cost_hint=1
            ),
        ]
        second = BatchRunner(
            RunnerConfig(
                workers=2, manifest_path=str(manifest), resume=True
            )
        ).run(retry_tasks)
        rerun = {r.task_id for r in second.results}
        assert "boom" in rerun  # crashed is not a completed status
        assert all(r.status == "ok" for r in second.results)


class TestCliBatch:
    def test_segment_dir_corpus_summary_and_exit(self, tmp_path):
        export_corpus(tmp_path)
        code, output = run_cli(
            "segment-dir", str(tmp_path), "--method", "prob"
        )
        assert code == 0
        assert f"sites: {len(SITES)} ok, 0 quarantined, 0 failed" in output
        assert (tmp_path / "run_manifest.jsonl").is_file()

    def test_segment_dir_resume_completes_remainder(self, tmp_path):
        export_corpus(tmp_path)
        manifest = tmp_path / "run.jsonl"
        code, _ = run_cli(
            "segment-dir", str(tmp_path / "lee"),
            "--manifest", str(manifest),
        )
        assert code == 0
        code, output = run_cli(
            "segment-dir", str(tmp_path),
            "--manifest", str(manifest), "--resume",
        )
        assert code == 0
        assert "1 resumed-skipped" in output

    def test_quarantined_site_exits_nonzero(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        broken = tmp_path / "broken"
        broken.mkdir()
        for name in ("l0.html", "l1.html"):
            (broken / name).write_text("<html><body></body></html>")
        (broken / "sample.json").write_text(
            json.dumps(
                {
                    "name": "broken",
                    "pages": [
                        {"list": "l0.html", "details": []},
                        {"list": "l1.html", "details": []},
                    ],
                }
            )
        )
        code, output = run_cli("segment-dir", str(tmp_path))
        assert code == 1
        assert "1 quarantined" in output

    def test_failed_site_exits_nonzero(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "sample.json").write_text("{not json")
        code, output = run_cli("segment-dir", str(tmp_path))
        assert code == 1
        assert "1 failed" in output
        assert "!! bad: failed" in output

    def test_export_corpus_roundtrip(self, tmp_path):
        code, output = run_cli(
            "export-corpus", str(tmp_path), "--sites", "lee", "butler"
        )
        assert code == 0 and "2 sample directories" in output
        tasks = tasks_from_directory(tmp_path)
        assert sorted(t.task_id for t in tasks) == ["butler", "lee"]


class TestGeneratedTasks:
    def test_generated_matches_sample_dir(self, tmp_path):
        export_corpus(tmp_path, names=("lee",))
        (dir_task,) = tasks_from_directory(tmp_path / "lee", method="prob")
        (gen_task,) = tasks_for_sites(["lee"], method="prob")
        dir_result = execute_task(dir_task)
        gen_result = execute_task(gen_task)
        assert [p.records for p in dir_result.pages] == [
            p.records for p in gen_result.pages
        ]

"""Inference correctness: forward-backward and Viterbi against exact
path enumeration on small lattices, plus EM behaviour."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.exceptions import InferenceError
from repro.prob.bootstrap import bootstrap_params, tentative_starts
from repro.prob.decode import viterbi
from repro.prob.em import run_em
from repro.prob.forward_backward import forward_backward
from repro.prob.lattice import Lattice, derive_column_count
from repro.prob.model import ModelParams, ProbConfig
from tests.conftest import PAPER_TABLE1, PAPER_TABLE2, build_observation_table

SMALL_DATA = [
    ("Ada Lane", {0: (10,)}),
    ("88-321", {0: (20,)}),
    ("Bo Reyes", {1: (10,)}),
    ("77-654", {1: (20,)}),
]


def small_lattice(use_period=True, data=None, detail_count=2, **kwargs):
    table = build_observation_table(data or SMALL_DATA, detail_count=detail_count)
    config = ProbConfig(use_period=use_period, max_columns=3, **kwargs)
    k = derive_column_count(table, config)
    lattice = Lattice.build(table, config, k)
    return lattice, table, config


def enumerate_paths(lattice, params, n_steps):
    """All positive-probability state paths with their probabilities."""
    emissions = lattice.emissions(params)
    weights = lattice.edge_weights(params)
    final = lattice.final_weights(params)
    edge_w = {}
    for e in range(lattice.n_edges):
        edge_w[(lattice.edge_src[e], lattice.edge_dst[e])] = weights[e]

    paths = {}
    states = range(lattice.n_states)
    for path in itertools.product(states, repeat=n_steps):
        prob = lattice.init_w[path[0]] * emissions[0][path[0]]
        for i in range(1, n_steps):
            prob *= edge_w.get((path[i - 1], path[i]), 0.0) * emissions[i][path[i]]
        prob *= final[path[-1]]
        if prob > 0:
            paths[path] = prob
    return paths


class TestForwardBackwardExact:
    @pytest.mark.parametrize("use_period", [False, True])
    def test_log_likelihood_matches_enumeration(self, use_period):
        lattice, table, config = small_lattice(use_period)
        params = bootstrap_params(table, config, lattice.k)
        result = forward_backward(lattice, params)
        paths = enumerate_paths(lattice, params, len(table.observations))
        assert result.log_likelihood == pytest.approx(
            np.log(sum(paths.values())), rel=1e-9
        )

    @pytest.mark.parametrize("use_period", [False, True])
    def test_gamma_matches_enumeration(self, use_period):
        lattice, table, config = small_lattice(use_period)
        params = bootstrap_params(table, config, lattice.k)
        result = forward_backward(lattice, params)
        paths = enumerate_paths(lattice, params, len(table.observations))
        total = sum(paths.values())
        for step in range(len(table.observations)):
            expected = np.zeros(lattice.n_states)
            for path, prob in paths.items():
                expected[path[step]] += prob
            expected /= total
            assert np.allclose(result.gamma[step], expected, atol=1e-10)

    def test_gamma_rows_normalized(self):
        lattice, table, config = small_lattice()
        params = ModelParams.uniform(lattice.k)
        result = forward_backward(lattice, params)
        assert np.allclose(result.gamma.sum(axis=1), 1.0)

    def test_xi_totals_sum_to_steps(self):
        lattice, table, config = small_lattice()
        params = ModelParams.uniform(lattice.k)
        result = forward_backward(lattice, params)
        # One transition event per step after the first.
        assert result.xi_edge_totals.sum() == pytest.approx(
            len(table.observations) - 1
        )

    def test_empty_sequence_raises(self):
        lattice, table, config = small_lattice()
        lattice.type_vectors = np.zeros((0, 8))
        lattice.d_compat = np.zeros((0, lattice.n_states))
        params = ModelParams.uniform(lattice.k)
        with pytest.raises(InferenceError):
            forward_backward(lattice, params)


class TestViterbiExact:
    @pytest.mark.parametrize("use_period", [False, True])
    def test_map_path_matches_enumeration(self, use_period):
        lattice, table, config = small_lattice(use_period)
        params = bootstrap_params(table, config, lattice.k)
        decoded = viterbi(lattice, params)
        paths = enumerate_paths(lattice, params, len(table.observations))
        best_path = max(paths, key=paths.__getitem__)
        best_prob = paths[best_path]
        our_prob = paths[tuple(decoded.states)]
        assert our_prob == pytest.approx(best_prob, rel=1e-9)

    def test_records_monotone(self):
        lattice, table, config = small_lattice()
        params = ModelParams.uniform(lattice.k)
        decoded = viterbi(lattice, params)
        assert all(
            a <= b for a, b in zip(decoded.records, decoded.records[1:])
        )

    def test_small_example_correct_segmentation(self):
        lattice, table, config = small_lattice()
        params = bootstrap_params(table, config, lattice.k)
        decoded = viterbi(lattice, params)
        assert decoded.records.tolist() == [0, 0, 1, 1]
        assert decoded.columns[0] == 0 and decoded.columns[2] == 0


class TestEm:
    def test_log_likelihood_non_decreasing(self):
        lattice, table, config = small_lattice()
        params, info = run_em(lattice, config)
        gains = np.diff(info.log_likelihoods)
        assert np.all(gains >= -1e-6)

    def test_convergence_flag(self):
        lattice, table, config = small_lattice()
        _, info = run_em(lattice, ProbConfig(max_iterations=100, max_columns=3))
        assert info.converged
        assert info.iterations < 100

    def test_iteration_cap_respected(self):
        lattice, table, config = small_lattice()
        _, info = run_em(lattice, ProbConfig(max_iterations=2, max_columns=3))
        assert info.iterations <= 2

    def test_period_learned_on_paper_example(self):
        table = build_observation_table(PAPER_TABLE1, detail_count=3)
        config = ProbConfig()
        k = derive_column_count(table, config)
        lattice = Lattice.build(table, config, k)
        params, _ = run_em(lattice, config, bootstrap_params(table, config, k))
        # Records have 4, 4 and 3 fields: mode should be 4.
        assert int(np.argmax(params.period[1:]) + 1) == 4


class TestBootstrap:
    def test_tentative_starts_on_paper_example(self, paper_table):
        starts = tentative_starts(paper_table)
        # The paper's rule fires where D_{i-1} and D_i are disjoint:
        # E_9 (seq 8) starts r3.  E_5 shares pages with E_4, so the
        # disjointness rule alone cannot see that boundary.
        assert starts[0] is True
        assert starts[8] is True

    def test_unique_pin_rule(self):
        table = build_observation_table(SMALL_DATA, detail_count=2)
        starts = tentative_starts(table)
        assert starts == [True, False, True, False]

    def test_bootstrap_params_valid(self, paper_table):
        config = ProbConfig()
        k = derive_column_count(paper_table, config)
        params = bootstrap_params(paper_table, config, k)
        assert np.all(params.emit > 0) and np.all(params.emit < 1)
        assert params.period[1:].sum() == pytest.approx(1.0)
        assert params.start_from[k - 1] == 1.0

    def test_bootstrap_beats_uniform_initially(self, paper_table):
        config = ProbConfig()
        k = derive_column_count(paper_table, config)
        lattice = Lattice.build(paper_table, config, k)
        uniform_ll = forward_backward(
            lattice, ModelParams.uniform(k, seed=config.seed)
        ).log_likelihood
        boot_ll = forward_backward(
            lattice, bootstrap_params(paper_table, config, k)
        ).log_likelihood
        assert boot_ll > uniform_ll

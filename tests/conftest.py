"""Shared fixtures: the paper's running example and small sites."""

from __future__ import annotations

import pytest

from repro.extraction.extracts import Extract
from repro.extraction.observations import Observation, ObservationTable
from repro.sitegen.corpus import build_corpus
from repro.tokens.tokenizer import tokenize_text
from repro.webdoc.page import Page

#: The paper's Table 1: extracts of the Superpages list page with the
#: detail pages (r1, r2, r3 -> 0, 1, 2) and positions they were
#: observed at.  E_1/E_5 and E_4/E_8 are the duplicated name/phone.
PAPER_TABLE1 = [
    ("John Smith", {0: (730,), 1: (536,)}),
    ("221 Washington", {0: (772,)}),
    ("New Holland", {0: (812,)}),
    ("(740) 335-5555", {0: (846,), 1: (578,)}),
    ("John Smith", {0: (730,), 1: (536,)}),
    ("221R Washington", {1: (608,)}),
    ("Washington", {1: (642,)}),
    ("(740) 335-5555", {0: (846,), 1: (578,)}),
    ("George W. Smith", {2: (700,)}),
    ("Findlay, OH", {2: (750,)}),
    ("(419) 423-1212", {2: (800,)}),
]

#: The correct segmentation of PAPER_TABLE1 (paper Table 2).
PAPER_TABLE2 = {
    0: [0, 1, 2, 3],
    1: [4, 5, 6, 7],
    2: [8, 9, 10],
}


def build_observation_table(
    data: list[tuple[str, dict[int, tuple[int, ...]]]],
    detail_count: int,
) -> ObservationTable:
    """Build an ObservationTable directly from (text, positions) rows."""
    extracts: list[Extract] = []
    observations: list[Observation] = []
    for index, (text, positions) in enumerate(data):
        extract = Extract(
            index=index,
            tokens=tuple(tokenize_text(text)),
            start_token_index=index * 10,
        )
        extracts.append(extract)
        observations.append(
            Observation(
                extract=extract,
                seq=len(observations),
                detail_pages=frozenset(positions),
                positions=dict(positions),
            )
        )
    return ObservationTable(
        extracts=extracts,
        observations=observations,
        detail_count=detail_count,
    )


@pytest.fixture
def paper_table() -> ObservationTable:
    """The paper's Table 1 as an observation table."""
    return build_observation_table(PAPER_TABLE1, detail_count=3)


def make_list_pages(rows_per_page: list[list[list[str]]]) -> list[Page]:
    """Tiny synthetic list pages: one <table> row per record."""
    pages = []
    for page_number, rows in enumerate(rows_per_page):
        cells = "".join(
            "<tr>" + "".join(f"<td>{value}</td>" for value in row) + "</tr>"
            for row in rows
        )
        html = (
            "<html><body><h1>Results Page</h1>"
            "<p>Showing matched entries below now</p>"
            f"<table>{cells}</table>"
            "<p>Copyright 2004 footer legal text</p></body></html>"
        )
        pages.append(Page(url=f"list{page_number}.html", html=html, kind="list"))
    return pages


def make_detail_page(number: int, values: list[str]) -> Page:
    """Tiny synthetic detail page listing field values."""
    body = "".join(f"<p>{value}</p>" for value in values)
    html = f"<html><body><h2>Record Detail</h2>{body}</body></html>"
    return Page(url=f"detail{number}.html", html=html, kind="detail")


@pytest.fixture(scope="session")
def corpus():
    """The full 12-site corpus (rendered once per test session)."""
    return build_corpus()

"""Property-based tests: pipeline invariants on randomized sites.

Hypothesis generates small site specifications (layout, schema width,
record counts, seed) and the invariants below must hold for every one
— the closest thing to fuzzing the whole system end to end.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.evaluation import score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen import datagen
from repro.sitegen.schema import FieldSpec, RecordSchema
from repro.sitegen.site import GeneratedSite, RowLayout, SiteSpec

FIELD_POOL = [
    ("name", datagen.full_person_name, 0.0),
    ("address", datagen.street_address, 0.2),
    ("phone", datagen.phone_number, 0.0),
    ("price", datagen.assessed_value, 0.1),
    ("date", datagen.admission_date, 0.0),
    ("parcel", datagen.parcel_id, 0.0),
]


@st.composite
def site_specs(draw):
    seed = draw(st.integers(0, 10_000))
    layout = draw(st.sampled_from(list(RowLayout)))
    field_count = draw(st.integers(2, 5))
    counts = (
        draw(st.integers(3, 12)),
        draw(st.integers(3, 12)),
    )
    fields = [
        FieldSpec(name, maker, missing_rate if index > 0 else 0.0)
        for index, (name, maker, missing_rate) in enumerate(
            FIELD_POOL[:field_count]
        )
    ]
    return SiteSpec(
        name="prop",
        title="Property Test Site",
        domain="fuzz",
        schema=RecordSchema(fields=fields),
        records_per_page=counts,
        layout=layout,
        seed=seed,
    )


COMMON_SETTINGS = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPipelineInvariants:
    @COMMON_SETTINGS
    @given(site_specs())
    def test_prob_assigns_every_observation(self, spec):
        site = GeneratedSite(spec)
        run = SegmentationPipeline("prob").segment_generated_site(site)
        for page_run in run.pages:
            segmentation = page_run.segmentation
            assert not segmentation.unassigned
            assigned = sum(
                len(record.observations) for record in segmentation.records
            )
            assert assigned == len(page_run.table.observations)

    @COMMON_SETTINGS
    @given(site_specs())
    def test_csp_respects_d_constraints(self, spec):
        site = GeneratedSite(spec)
        run = SegmentationPipeline("csp").segment_generated_site(site)
        for page_run in run.pages:
            for record in page_run.segmentation.records:
                for observation in record.observations:
                    assert record.record_id in observation.detail_pages

    @COMMON_SETTINGS
    @given(site_specs())
    def test_csp_records_are_contiguous_blocks(self, spec):
        site = GeneratedSite(spec)
        run = SegmentationPipeline("csp").segment_generated_site(site)
        for page_run in run.pages:
            segmentation = page_run.segmentation
            if segmentation.is_partial:
                continue  # contiguity is over assigned extracts only
            for record in segmentation.records:
                seqs = sorted(record.assigned_seqs)
                assert seqs == list(range(seqs[0], seqs[-1] + 1))

    @COMMON_SETTINGS
    @given(site_specs())
    def test_scores_are_conserved(self, spec):
        site = GeneratedSite(spec)
        for method in ("csp", "prob"):
            run = SegmentationPipeline(method).segment_generated_site(site)
            for page_run, truth in zip(run.pages, site.truth):
                score = score_page(page_run.segmentation, truth)
                assert score.cor + score.inc + score.fn == len(truth.rows)
                assert min(score.as_row()) >= 0

    @COMMON_SETTINGS
    @given(site_specs())
    def test_clean_random_sites_segment_well(self, spec):
        # Uncorrupted sites should be recovered almost entirely by the
        # probabilistic method regardless of layout/schema/seed.
        site = GeneratedSite(spec)
        run = SegmentationPipeline("prob").segment_generated_site(site)
        total_cor = 0
        total_records = 0
        for page_run, truth in zip(run.pages, site.truth):
            score = score_page(page_run.segmentation, truth)
            total_cor += score.cor
            total_records += len(truth.rows)
        assert total_cor >= int(0.7 * total_records)

"""Tests for the ingestion front door: fingerprints, page-type
classification, template clustering, and site bundling."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.ingest import (
    ClusterConfig,
    ingest_pages,
    profile_page,
    profile_pages,
    write_bundles,
)
from repro.ingest.classify import classify_profile
from repro.ingest.cluster import cluster_profiles
from repro.ingest.fingerprint import ShingleSpace
from repro.obs import Observability
from repro.runner.engine import BatchRunner, RunnerConfig
from repro.runner.tasks import tasks_from_directory
from repro.sitegen.corpus import build_site
from repro.sitegen.mixed import (
    MixedCorpusSpec,
    build_mixed_corpus,
    score_bundles,
)
from repro.webdoc.page import Page
from repro.webdoc.store import save_sample


def _jaccard(a, b):
    a, b = set(a), set(b)
    return len(a & b) / len(a | b)


@pytest.fixture(scope="module")
def corpus():
    return build_mixed_corpus(MixedCorpusSpec(sites=6, seed=11))


@pytest.fixture(scope="module")
def report(corpus):
    return ingest_pages(corpus.pages)


class TestFingerprint:
    def test_same_template_pages_share_shingles(self):
        site = build_site("ohio")
        space = ShingleSpace()
        profiles = [
            profile_page(page, space) for page in site.detail_pages(0)[:3]
        ]
        assert _jaccard(profiles[0].shingles, profiles[1].shingles) > 0.7
        assert _jaccard(profiles[0].shingles, profiles[2].shingles) > 0.7

    def test_different_templates_share_little(self):
        site = build_site("ohio")
        space = ShingleSpace()
        detail = profile_page(site.detail_pages(0)[0], space)
        ad = profile_page(site.fetch("ohio-ad0.html"), space)
        assert _jaccard(detail.shingles, ad.shingles) < 0.3

    def test_list_page_repeats_structure(self):
        site = build_site("ohio")
        space = ShingleSpace()
        list_profile = profile_page(site.list_pages[0], space)
        ad_profile = profile_page(site.fetch("ohio-ad0.html"), space)
        assert list_profile.repeat_ratio > 0.4
        assert list_profile.repeat_ratio > ad_profile.repeat_ratio

    def test_links_in_first_occurrence_order(self):
        site = build_site("ohio")
        profile = profile_page(site.list_pages[0], ShingleSpace())
        detail_urls = [page.url for page in site.detail_pages(0)]
        in_profile = [url for url in profile.links if url in set(detail_urls)]
        assert in_profile == detail_urls

    def test_next_and_form_signals(self):
        site = build_site("ohio")
        space = ShingleSpace()
        first = profile_page(site.list_pages[0], space)
        last = profile_page(site.list_pages[1], space)
        index = profile_page(site.fetch("ohio-index.html"), space)
        assert first.next_url == "ohio-list1.html"
        assert last.next_url is None
        assert index.has_form and not first.has_form

    def test_fragment_and_empty_hrefs_skipped(self):
        page = Page(
            "x.html",
            '<a href="#top">Top</a><a href="">E</a><a href="y.html">Y</a>',
        )
        profile = profile_page(page, ShingleSpace())
        assert profile.links == ("y.html",)

    def test_shared_space_required_for_comparability(self):
        site = build_site("ohio")
        pages = site.detail_pages(0)[:2]
        shared = ShingleSpace()
        a1, b1 = (profile_page(page, shared) for page in pages)
        assert _jaccard(a1.shingles, b1.shingles) > 0.7
        # Separate spaces assign independent ids; same page, same space
        # stays deterministic.
        again = profile_page(pages[0], ShingleSpace())
        assert profile_page(pages[0], ShingleSpace()).shingles == again.shingles


class TestClassify:
    @pytest.fixture(scope="class")
    def ohio_profiles(self):
        site = build_site("ohio")
        space = ShingleSpace()
        return {
            "list": profile_page(site.list_pages[0], space),
            "detail": profile_page(site.detail_pages(0)[0], space),
            "index": profile_page(site.fetch("ohio-index.html"), space),
            "ad": profile_page(site.fetch("ohio-ad0.html"), space),
        }

    def test_list_page(self, ohio_profiles):
        assert classify_profile(ohio_profiles["list"]) == "list"

    def test_detail_page(self, ohio_profiles):
        assert classify_profile(ohio_profiles["detail"]) == "detail"

    def test_form_page_is_other(self, ohio_profiles):
        assert classify_profile(ohio_profiles["index"]) == "other"

    def test_linkless_page_is_other(self, ohio_profiles):
        assert classify_profile(ohio_profiles["ad"]) == "other"


class TestCluster:
    def test_templates_separate(self):
        site = build_site("ohio")
        pages = (
            site.detail_pages(0)
            + [site.fetch("ohio-ad0.html")]
            + site.list_pages
        )
        profiles = profile_pages(pages)
        clusters = cluster_profiles(profiles)
        sizes = sorted(len(cluster) for cluster in clusters)
        # details together, ad alone, the two list pages together
        assert sizes == [1, 2, len(site.detail_pages(0))]

    def test_deterministic(self):
        site = build_site("ohio")
        pages = site.detail_pages(0) + [site.fetch("ohio-ad0.html")]

        def run():
            clusters = cluster_profiles(profile_pages(pages))
            return [tuple(cluster.members) for cluster in clusters]

        assert run() == run()

    def test_near_duplicate_clusters_merge(self):
        site = build_site("ohio")
        pages = site.detail_pages(0)
        profiles = profile_pages(pages)
        # An absurd join threshold seeds one cluster per page; the
        # merge pass must still fuse the identical-template clusters.
        config = ClusterConfig(join_threshold=1.01, merge_threshold=0.7)
        clusters = cluster_profiles(profiles, config)
        assert len(clusters) == 1
        assert clusters[0].members == list(range(len(pages)))

    def test_cross_seed_same_template_joins(self):
        # Two sites stamped from the same family with different seeds:
        # near-duplicate templates, one cluster.
        a = build_mixed_corpus(MixedCorpusSpec(sites=1, seed=1))
        b = build_mixed_corpus(MixedCorpusSpec(sites=1, seed=2))
        pages = (
            a.generated["mix000"].detail_pages(0)
            + b.generated["mix000"].detail_pages(0)
        )
        clusters = cluster_profiles(profile_pages(pages))
        assert len(clusters) == 1


class TestIngestEndToEnd:
    def test_bundle_count_matches_truth(self, corpus, report):
        assert len(report.bundles) == corpus.spec.expected_site_count()
        assert len(report.bundles) == len(corpus.sites)

    def test_every_page_accounted_for(self, corpus, report):
        assert report.page_count == corpus.page_count
        assert report.reconciles()
        bundled = {url for b in report.bundles for url in b.page_urls()}
        quarantined = {page.url for page in report.quarantined}
        assert bundled | quarantined == {page.url for page in corpus.pages}
        assert not bundled & quarantined

    def test_bundles_exactly_match_true_sites(self, corpus, report):
        score = score_bundles(
            corpus.sites,
            [(b.name, b.page_urls()) for b in report.bundles],
        )
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.exact_bundles == len(report.bundles)

    def test_distractors_all_quarantined(self, corpus, report):
        quarantined = {page.url for page in report.quarantined}
        assert corpus.distractor_urls <= quarantined

    def test_quarantine_reasons(self, corpus, report):
        counts = report.quarantine_counts()
        # Search forms and index pages carry forms; orphans are
        # structurally unique singletons.
        assert counts.get("form", 0) >= corpus.spec.form_page_count
        assert counts.get("orphan", 0) >= corpus.spec.orphan_count // 2
        by_url = {page.url: page.reason for page in report.quarantined}
        assert all(
            by_url[f"orphan-{i:03d}.html"] == "orphan"
            for i in range(corpus.spec.orphan_count)
        )
        assert all(
            by_url[f"searchhub-{i:03d}.html"] == "form"
            for i in range(corpus.spec.form_page_count)
        )

    def test_multi_template_slot_splits(self, corpus, report):
        names = {bundle.name for bundle in report.bundles}
        assert "mix002a-list0" in names and "mix002b-list0" in names
        a = next(b for b in report.bundles if b.name == "mix002a-list0")
        b = next(b for b in report.bundles if b.name == "mix002b-list0")
        assert a.list_cluster_id != b.list_cluster_id

    def test_metrics_reconcile(self, corpus):
        obs = Observability()
        ingest_pages(corpus.pages, obs=obs)
        metrics = obs.metrics.as_dict()["counters"]
        assert metrics["ingest.pages"] == corpus.page_count
        assert (
            metrics["ingest.pages.bundled"]
            + metrics["ingest.pages.quarantined"]
            == metrics["ingest.pages"]
        )

    def test_duplicate_urls_quarantined(self, corpus):
        pages = list(corpus.pages) + [corpus.pages[0], corpus.pages[1]]
        report = ingest_pages(pages)
        assert report.page_count == len(pages)
        assert report.reconciles()
        assert report.quarantine_counts().get("duplicate-url") == 2

    def test_empty_crawl(self):
        report = ingest_pages([])
        assert report.page_count == 0
        assert report.bundles == [] and report.quarantined == []
        assert report.reconciles()


class TestWriteBundles:
    def test_manifest_and_layout(self, corpus, report, tmp_path):
        manifest_path = write_bundles(report, tmp_path)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["reconciled"] is True
        assert manifest["pages"] == corpus.page_count
        assert manifest["bundled"] + manifest["quarantined"] == manifest["pages"]
        assert len(manifest["bundles"]) == len(report.bundles)
        tasks = tasks_from_directory(tmp_path)
        assert len(tasks) == len(report.bundles)


class TestDigestParity:
    def test_bundles_segment_identically_to_clean_path(self, tmp_path):
        corpus = build_mixed_corpus(MixedCorpusSpec(sites=4, seed=5))
        report = ingest_pages(corpus.pages)
        assert len(report.bundles) == len(corpus.sites)

        bundle_dir = tmp_path / "bundles"
        clean_dir = tmp_path / "clean"
        write_bundles(report, bundle_dir)
        for site in corpus.generated.values():
            save_sample(
                clean_dir / site.spec.name,
                site.spec.name,
                site.list_pages,
                [
                    site.detail_pages(i)
                    for i in range(len(site.list_pages))
                ],
            )

        runner = BatchRunner(RunnerConfig(workers=1))
        via_ingest = runner.run(tasks_from_directory(bundle_dir))
        via_clean = runner.run(tasks_from_directory(clean_dir))
        assert {r.status for r in via_ingest.results} == {"ok"}
        assert sorted(r.digest() for r in via_ingest.results) == sorted(
            r.digest() for r in via_clean.results
        )


class TestCli:
    def test_ingest_command_json(self, tmp_path, capsys):
        crawl = tmp_path / "crawl"
        out_dir = tmp_path / "bundles"
        assert main(["export-corpus", str(crawl), "--mixed", "3", "--seed", "9"]) == 0
        capsys.readouterr()
        assert main(
            ["ingest", str(crawl), "--out", str(out_dir), "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["reconciled"] is True
        assert summary["bundled"] + summary["quarantined"] == summary["pages"]
        assert len(summary["bundles"]) >= 3
        assert (out_dir / "ingest_manifest.json").is_file()
        assert len(tasks_from_directory(out_dir)) == len(summary["bundles"])

    def test_ingest_bad_directory(self, tmp_path, capsys):
        assert (
            main(["ingest", str(tmp_path / "nope"), "--out", str(tmp_path / "o")])
            == 2
        )
        assert "cannot read crawl directory" in capsys.readouterr().out

    def test_config_flags(self, tmp_path, capsys):
        crawl = tmp_path / "crawl"
        assert main(["export-corpus", str(crawl), "--mixed", "2"]) == 0
        code = main(
            [
                "ingest",
                str(crawl),
                "--out",
                str(tmp_path / "b"),
                "--join-threshold",
                "0.5",
                "--merge-threshold",
                "0.6",
                "--min-details",
                "2",
            ]
        )
        assert code == 0
        assert "bundles under" in capsys.readouterr().out

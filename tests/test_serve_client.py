"""Tests for the client's bounded, seeded-jitter retries (serve/client.py)."""

from __future__ import annotations

import http.server
import socket
import struct
import threading
import urllib.error

import pytest

from repro.serve.client import RETRY_STATUSES, ServeClient


class FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers from a per-server script of (status, body) entries."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):
        pass

    def _serve(self):
        script = self.server.script
        step = script.pop(0) if len(script) > 1 else script[0]
        status, body = step
        if status == "reset":
            # SO_LINGER with zero timeout turns close() into an RST —
            # the wire signature of a SIGKILLed worker.
            self.connection.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            self.connection.close()
            return
        data = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if status == 429:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(data)

    do_GET = _serve
    do_POST = _serve


@pytest.fixture()
def scripted_server():
    servers = []

    def build(script):
        server = http.server.HTTPServer(("127.0.0.1", 0), FlakyHandler)
        server.script = list(script)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return f"http://127.0.0.1:{server.server_address[1]}"

    yield build
    for server in servers:
        server.shutdown()
        server.server_close()


class TestRetryDelay:
    def test_deterministic_for_same_seed(self):
        a = ServeClient("http://x", retry_seed=42)
        b = ServeClient("http://x", retry_seed=42)
        delays_a = [a.retry_delay("/v1/segment", n) for n in range(5)]
        delays_b = [b.retry_delay("/v1/segment", n) for n in range(5)]
        assert delays_a == delays_b
        c = ServeClient("http://x", retry_seed=43)
        assert [c.retry_delay("/v1/segment", n) for n in range(5)] != delays_a

    def test_exponential_and_capped(self):
        client = ServeClient(
            "http://x", retry_base_s=0.1, retry_max_s=0.4, retry_seed=0
        )
        # Strip the [0.5x, 1.5x) jitter to check the base schedule.
        bases = [
            client.retry_delay("/p", n) / (0.5 + _unit(0, "/p", n))
            for n in range(4)
        ]
        assert bases == pytest.approx([0.1, 0.2, 0.4, 0.4])

    def test_retry_after_raises_delay_but_respects_cap(self):
        client = ServeClient(
            "http://x", retry_base_s=0.01, retry_max_s=2.0, retry_seed=0
        )
        hinted = client.retry_delay("/p", 0, retry_after="1.5")
        plain = client.retry_delay("/p", 0)
        assert hinted > plain
        capped = client.retry_delay("/p", 0, retry_after="60")
        assert capped <= 2.0 * 1.5  # cap x max jitter
        # A malformed hint falls back to the exponential schedule.
        assert client.retry_delay("/p", 0, retry_after="soon") == plain

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            ServeClient("http://x", max_retries=-1)


class TestRetryLoop:
    def test_retries_429_until_success(self, scripted_server):
        url = scripted_server(
            [(429, '{"error": "full"}'), (429, '{"error": "full"}'),
             (200, '{"ok": true}')]
        )
        client = ServeClient(
            url, max_retries=5, retry_base_s=0.01, timeout_s=10.0
        )
        response = client.healthz()
        assert response.status == 200
        assert client.retries == 2

    def test_exhausted_retries_return_last_429(self, scripted_server):
        url = scripted_server([(429, '{"error": "full"}')])
        client = ServeClient(
            url, max_retries=2, retry_base_s=0.01, timeout_s=10.0
        )
        response = client.healthz()
        assert response.status == 429
        assert client.retries == 2

    def test_connection_reset_retried(self, scripted_server):
        url = scripted_server([("reset", ""), (200, '{"ok": true}')])
        client = ServeClient(
            url, max_retries=3, retry_base_s=0.01, timeout_s=10.0
        )
        response = client.healthz()
        assert response.status == 200
        assert client.retries >= 1

    def test_zero_retries_preserves_historical_behavior(
        self, scripted_server
    ):
        url = scripted_server([(429, '{"error": "full"}')])
        client = ServeClient(url, timeout_s=10.0)  # max_retries=0
        assert client.healthz().status == 429
        assert client.retries == 0

    def test_transport_failure_raises_when_exhausted(self):
        # Nothing listens on this port; refusals burn every retry.
        client = ServeClient(
            "http://127.0.0.1:9", max_retries=1, retry_base_s=0.01,
            timeout_s=2.0,
        )
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            client.healthz()
        assert client.retries == 1

    def test_non_retryable_status_returns_immediately(self, scripted_server):
        url = scripted_server([(500, '{"error": "boom"}')])
        client = ServeClient(url, max_retries=5, retry_base_s=0.01)
        assert client.healthz().status == 500
        assert client.retries == 0
        assert 500 not in RETRY_STATUSES


def _unit(seed, path, attempt):
    from repro.sitegen.faults import stable_unit

    return stable_unit(f"{seed}:{path}:{attempt}")

"""Tests for the layout-based baseline segmenters."""

from __future__ import annotations

import pytest

from repro.baselines.grammar import (
    GrammarSegmenter,
    induce_row_template,
    row_matches_template,
)
from repro.baselines.pat_tree import PatternSegmenter, best_repeated_pattern
from repro.baselines.runner import run_baseline_on_site
from repro.baselines.tag_heuristic import (
    TagHeuristicSegmenter,
    choose_row_tag,
    split_rows_at_tag,
)
from repro.sitegen.corpus import build_site
from repro.tokens.tokenizer import tokenize_html


class TestChooseRowTag:
    def test_tr_preferred(self):
        tokens = tokenize_html("<div><tr>a</tr><tr>b</tr><div>c</div></div>")
        assert choose_row_tag(tokens) == "<tr>"

    def test_falls_back_down_priority(self):
        tokens = tokenize_html("<p>a</p><p>b</p>")
        assert choose_row_tag(tokens) == "<p>"

    def test_none_when_nothing_repeats(self):
        tokens = tokenize_html("<span>a</span>")
        assert choose_row_tag(tokens) is None


class TestSplitRows:
    def test_ranges_cover_from_first_tag(self):
        tokens = tokenize_html("x<tr>a</tr><tr>b</tr>")
        ranges = split_rows_at_tag(tokens, "<tr>")
        assert len(ranges) == 2
        assert ranges[0][0] < ranges[0][1] <= ranges[1][0]

    def test_no_occurrences(self):
        tokens = tokenize_html("plain text")
        assert split_rows_at_tag(tokens, "<tr>") == []


class TestBestRepeatedPattern:
    def test_finds_row_pattern(self):
        html = "".join(f"<tr><td>r{i}</td></tr>" for i in range(5))
        pattern = best_repeated_pattern(tokenize_html(html))
        assert pattern is not None
        assert len(pattern.occurrences) == 5

    def test_none_on_tiny_pages(self):
        assert best_repeated_pattern(tokenize_html("<p>once</p>")) is None

    def test_occurrences_non_overlapping(self):
        html = "<br><br><br><br><br><br>"
        pattern = best_repeated_pattern(tokenize_html(html))
        assert pattern is not None
        gaps = [
            b - a
            for a, b in zip(pattern.occurrences, pattern.occurrences[1:])
        ]
        assert all(gap >= len(pattern.tags) for gap in gaps)


class TestRowTemplate:
    def test_induce_common_tokens(self):
        rows = [
            tokenize_html("<td>Ann</td><td>1</td>"),
            tokenize_html("<td>Bob</td><td>2</td>"),
        ]
        template = induce_row_template(rows)
        assert template.count("<td>") == 2
        assert "Ann" not in template

    def test_empty_rows(self):
        assert induce_row_template([]) == []

    def test_row_matches(self):
        rows = [
            tokenize_html("<td>Ann</td><td>1</td>"),
            tokenize_html("<td>Bob</td><td>2</td>"),
        ]
        template = induce_row_template(rows)
        assert row_matches_template(rows[0], template)
        assert not row_matches_template(
            tokenize_html("<p>unrelated</p>"), template
        )

    def test_empty_template_matches_nothing(self):
        assert not row_matches_template(tokenize_html("<td>x</td>"), [])


class TestBaselinesOnSites:
    @pytest.mark.parametrize(
        "baseline_factory",
        [TagHeuristicSegmenter, PatternSegmenter, GrammarSegmenter],
    )
    def test_clean_grid_site_segmented_well(self, baseline_factory):
        site = build_site("allegheny")
        rows = run_baseline_on_site(site, baseline_factory())
        total_cor = sum(row.score.cor for row in rows)
        assert total_cor >= 30  # 40 records; layout baselines do fine on grids

    def test_tag_heuristic_fails_on_flat_layout(self):
        # The FLAT layout uses <br> for fields and records alike: the
        # naive tag splitter shatters every record (the paper's point).
        site = build_site("lee")
        rows = run_baseline_on_site(site, TagHeuristicSegmenter())
        total_cor = sum(row.score.cor for row in rows)
        assert total_cor == 0

    def test_methods_metadata_present(self):
        site = build_site("ohio")
        rows = run_baseline_on_site(site, TagHeuristicSegmenter())
        assert all(row.method == "tag-heuristic" for row in rows)
        assert rows[0].meta.get("row_tag") is not None

    def test_grammar_reports_template(self):
        site = build_site("ohio")
        rows = run_baseline_on_site(site, GrammarSegmenter())
        assert rows[0].meta["template"] is not None

"""Tests for the declarative stage graph (core/stages.py).

Three layers:

* unit tests of the generic contract (context layering, toposort,
  entry points, degradation ladders);
* the *golden key-parity* tests: the graph's chained cache-key
  material must equal — part for part, fingerprint for fingerprint —
  the hand-written tuples the pipeline passed to ``StageCache``
  before the refactor, and a cache primed old-style (legacy tuples,
  values computed by direct stage calls) must serve a graph-driven
  run with zero misses;
* the degradation ladder as data: every rung of the pipeline's
  template/segment ladders produces the same meta and health
  fallbacks the hand-written ladders did.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.exceptions import (
    CspError,
    EmptyProblemError,
    TemplateNotFoundError,
)
from repro.core.pipeline import PIPELINE_GRAPH, SegmentationPipeline
from repro.core.stages import Degradation, Stage, StageContext, StageGraph
from repro.crawl.resilient import CrawlHealth
from repro.csp.segmenter import CspSegmenter
from repro.extraction.extracts import extract_strings
from repro.extraction.observations import ObservationTable
from repro.runner.cache import MemoryStageCache, StageCache, fingerprint
from repro.sitegen.corpus import build_site
from repro.template.finder import TemplateFinder
from repro.template.table_slot import resolve_table_regions
from repro.webdoc.page import Page


class TestStageContext:
    def test_child_resolves_through_parent(self):
        parent = StageContext({"a": 1})
        child = parent.child(b=2)
        assert child["a"] == 1 and child["b"] == 2
        assert "a" in child and "b" in child and "c" not in child
        assert child.get("c", 9) == 9
        with pytest.raises(KeyError):
            child["c"]

    def test_set_binds_in_own_layer_only(self):
        parent = StageContext({"a": 1})
        child = parent.child()
        child.set("a", 2)
        assert child["a"] == 2 and parent["a"] == 1

    def test_health_inherited(self):
        health = CrawlHealth()
        parent = StageContext({}, health=health)
        assert parent.child().health is health


class TestStageGraphStructure:
    def test_duplicate_name_rejected(self):
        stage = Stage(name="s", compute=lambda ctx: 1)
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph((stage, stage))

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            StageGraph((Stage(name="s", compute=lambda ctx: 1, deps=("x",)),))

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            StageGraph(
                (
                    Stage(name="a", compute=lambda ctx: 1, deps=("b",)),
                    Stage(name="b", compute=lambda ctx: 1, deps=("a",)),
                )
            )

    def test_unknown_target_rejected(self):
        graph = StageGraph((Stage(name="a", compute=lambda ctx: 1),))
        with pytest.raises(ValueError, match="unknown stage"):
            graph.run(StageContext(), targets=("nope",))

    def test_runs_dependency_closure_in_order(self):
        ran: list[str] = []

        def compute(name):
            return lambda ctx: ran.append(name) or name

        graph = StageGraph(
            (
                Stage(name="c", compute=compute("c"), deps=("b",)),
                Stage(name="a", compute=compute("a")),
                Stage(name="b", compute=compute("b"), deps=("a",)),
                Stage(name="other", compute=compute("other")),
            )
        )
        ctx = graph.run(StageContext(), targets=("c",))
        assert ran == ["a", "b", "c"]  # closure only, dependency order
        assert ctx["c"] == "c"

    def test_already_bound_stage_not_rerun(self):
        ran: list[str] = []
        graph = StageGraph(
            (
                Stage(name="a", compute=lambda ctx: ran.append("a") or 1),
                Stage(
                    name="b",
                    compute=lambda ctx: ran.append("b") or ctx["a"] + 1,
                    deps=("a",),
                ),
            )
        )
        site = StageContext()
        graph.run(site, targets=("a",))
        page = site.child()
        graph.run(page, targets=("b",))
        assert ran == ["a", "b"]  # "a" computed once, shared via parent
        assert page["b"] == 2

    def test_key_material_requires_declared_key(self):
        graph = StageGraph((Stage(name="a", compute=lambda ctx: 1),))
        with pytest.raises(ValueError, match="no cache key"):
            graph.key_material("a", StageContext())


class TestDegradationLadder:
    def _graph(self, degradations, compute=None):
        return StageGraph(
            (
                Stage(
                    name="s",
                    compute=compute or (lambda ctx: "computed"),
                    degradations=tuple(degradations),
                ),
            )
        )

    def test_condition_preempts_compute(self):
        graph = self._graph(
            [
                Degradation(
                    condition=lambda ctx: True,
                    fallback=lambda error, ctx: "degraded",
                    label="rung",
                )
            ],
            compute=lambda ctx: pytest.fail("must not compute"),
        )
        health = CrawlHealth()
        ctx = StageContext({}, health=health)
        graph.run(ctx)
        assert ctx["s"] == "degraded"
        assert health.fallbacks == ["rung"]

    def test_exception_rungs_match_in_order(self):
        def boom(ctx):
            raise EmptyProblemError("nothing")

        graph = self._graph(
            [
                Degradation(
                    exceptions=(CspError,),
                    fallback=lambda error, ctx: "csp",
                ),
                Degradation(
                    exceptions=(EmptyProblemError,),
                    fallback=lambda error, ctx: f"empty:{error}",
                ),
            ],
            compute=boom,
        )
        ctx = graph.run(StageContext())
        assert ctx["s"] == "empty:nothing"

    def test_unmatched_exception_propagates(self):
        def boom(ctx):
            raise RuntimeError("real bug")

        graph = self._graph(
            [Degradation(exceptions=(CspError,), fallback=lambda e, c: "x")],
            compute=boom,
        )
        with pytest.raises(RuntimeError, match="real bug"):
            graph.run(StageContext())

    def test_unlabelled_rung_leaves_health_alone(self):
        graph = self._graph(
            [
                Degradation(
                    condition=lambda ctx: True,
                    fallback=lambda error, ctx: None,
                )
            ]
        )
        health = CrawlHealth()
        graph.run(StageContext({}, health=health))
        assert health.fallbacks == []

    def test_degraded_result_is_cached(self):
        calls: list[int] = []

        graph = StageGraph(
            (
                Stage(
                    name="s",
                    key=lambda ctx: ("k",),
                    compute=lambda ctx: calls.append(1) or "computed",
                    degradations=(
                        Degradation(
                            condition=lambda ctx: True,
                            fallback=lambda error, ctx: "degraded",
                        ),
                    ),
                ),
            )
        )
        cache = MemoryStageCache()
        assert graph.run(StageContext(), cache=cache)["s"] == "degraded"
        assert graph.run(StageContext(), cache=cache)["s"] == "degraded"
        assert calls == []
        assert cache.stats.hits == 1 and cache.stats.misses == 1


def _legacy_key_tuples(site, method="csp", config=None):
    """The pre-refactor hand-written cache-key tuples, frozen here.

    These reproduce, part for part, the tuples the old
    ``SegmentationPipeline._cached`` call sites built inline; the
    golden tests below assert the graph's chained key material stays
    byte-identical to them.
    """
    config = config or PipelineConfig()
    list_pages = site.list_pages
    list_htmls = [page.html for page in list_pages]
    details = [site.detail_pages(i) for i in range(len(list_pages))]
    method_config = {
        "csp": config.csp,
        "prob": config.prob,
        "hybrid": (config.csp, config.prob),
    }[method]

    template = (list_htmls, config.template)
    per_page = []
    for index in range(len(list_pages)):
        extracts = template + (index, config.allowed_punct)
        observations = extracts + (
            [page.html for page in details[index]],
            config.match,
        )
        segment = observations + (method, method_config)
        per_page.append(
            {
                "extracts": extracts,
                "observations": observations,
                "segment": segment,
            }
        )
    tokenize = {
        page.url: (page.html,)
        for page in list_pages + [p for group in details for p in group]
    }
    return template, per_page, tokenize, details


class TestGoldenKeyParity:
    """Satellite: graph key material == pre-refactor tuples."""

    @pytest.fixture()
    def site(self):
        return build_site("lee")

    @pytest.mark.parametrize("method", ["csp", "prob", "hybrid"])
    def test_key_material_matches_legacy_tuples(self, site, method):
        config = PipelineConfig()
        template_key, per_page, tokenize_keys, details = _legacy_key_tuples(
            site, method, config
        )
        pipeline = SegmentationPipeline(method, config)
        ctx = pipeline._site_context(site.list_pages, None)
        PIPELINE_GRAPH.run(ctx, targets=("template",))

        assert PIPELINE_GRAPH.key_material("template", ctx) == list(
            template_key
        )
        for index, region in enumerate(ctx["regions"]):
            page_ctx = ctx.child(
                index=index,
                region=region,
                details=details[index],
                other_lists=[
                    page
                    for position, page in enumerate(site.list_pages)
                    if position != index
                ],
            )
            for stage in ("extracts", "observations", "segment"):
                material = PIPELINE_GRAPH.key_material(stage, page_ctx)
                assert material == list(per_page[index][stage]), stage
                # Same fingerprint => same on-disk cache entry path.
                assert fingerprint(stage, material) == fingerprint(
                    stage, list(per_page[index][stage])
                )
        for page in site.list_pages:
            tok_ctx = StageContext({"page": page})
            assert PIPELINE_GRAPH.key_material("tokenize", tok_ctx) == list(
                tokenize_keys[page.url]
            )

    def test_legacy_primed_cache_serves_graph_run_warm(self, tmp_path, site):
        """A cache primed with pre-refactor keys gives 100% hits."""
        config = PipelineConfig()
        method = "csp"
        template_key, per_page, tokenize_keys, details = _legacy_key_tuples(
            site, method, config
        )
        cache = StageCache(tmp_path)

        # Prime old-style: hand-built key tuples, values from direct
        # stage calls (no stage graph anywhere in this block).
        for page in site.list_pages + [
            page for group in details for page in group
        ]:
            cache.store(
                "tokenize",
                cache.key("tokenize", tokenize_keys.get(page.url, (page.html,))),
                page.tokens(),
            )
        verdict = TemplateFinder(config.template).find(site.list_pages)
        cache.store("template", cache.key("template", template_key), verdict)
        regions = resolve_table_regions(site.list_pages, verdict)
        for index, region in enumerate(regions):
            extracts = extract_strings(region, config.allowed_punct)
            cache.store(
                "extracts",
                cache.key("extracts", per_page[index]["extracts"]),
                extracts,
            )
            table = ObservationTable.build(
                extracts,
                details[index],
                other_list_pages=[
                    page
                    for position, page in enumerate(site.list_pages)
                    if position != index
                ],
                options=config.match,
            )
            cache.store(
                "observations",
                cache.key("observations", per_page[index]["observations"]),
                table,
            )
            segmentation = CspSegmenter(config.csp).segment(table)
            cache.store(
                "segment",
                cache.key("segment", per_page[index]["segment"]),
                segmentation,
            )

        warm = StageCache(tmp_path)
        pipeline = SegmentationPipeline(method, config, cache=warm)
        run = pipeline.segment_site(site.list_pages, details)
        assert warm.stats.misses == 0
        assert warm.stats.hits > 0
        assert len(run.pages) == len(site.list_pages)
        assert all(page_run.segmentation.records for page_run in run.pages)


class _Raising:
    def __init__(self, error):
        self.error = error

    def segment(self, table):
        raise self.error


class TestPipelineLadderAsData:
    """Satellite: each declared rung matches the hand-written ladder."""

    @pytest.mark.parametrize("method", ["csp", "prob"])
    def test_single_list_page_skips_induction(self, method):
        site = build_site("lee")
        health = CrawlHealth()
        run = SegmentationPipeline(method).segment_site(
            site.list_pages[:1],
            [site.detail_pages(0)],
            crawl_health=health,
        )
        assert not run.template_verdict.ok
        assert "only one list page" in run.template_verdict.reason
        assert health.fallbacks == ["single_list_page"]
        assert len(run.pages) == 1
        assert run.pages[0].segmentation.meta["whole_page"] is True
        assert run.pages[0].segmentation.meta["template_ok"] is False

    @pytest.mark.parametrize("method", ["csp", "prob"])
    def test_template_not_found_is_whole_page_rung(self, method, monkeypatch):
        site = build_site("lee")
        pipeline = SegmentationPipeline(method)

        def raise_not_found(pages):
            raise TemplateNotFoundError("sample too noisy")

        monkeypatch.setattr(pipeline._finder, "find", raise_not_found)
        health = CrawlHealth()
        run = pipeline.segment_site(
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
            crawl_health=health,
        )
        assert run.whole_page_fallback
        assert "sample too noisy" in run.template_verdict.reason
        assert health.fallbacks == ["whole_page_template"]
        for page_run in run.pages:
            assert page_run.segmentation.meta["whole_page"] is True

    @pytest.mark.parametrize("method", ["csp", "prob"])
    def test_empty_sample_records_fallback(self, method):
        health = CrawlHealth()
        run = SegmentationPipeline(method).segment_site(
            [], [], crawl_health=health
        )
        assert run.pages == []
        assert not run.template_verdict.ok
        assert health.fallbacks == ["empty_sample"]

    def test_segmenter_csp_error_becomes_unsegmented_page(self, monkeypatch):
        site = build_site("lee")
        pipeline = SegmentationPipeline("csp")
        monkeypatch.setattr(
            pipeline,
            "_make_segmenter",
            lambda: _Raising(CspError("unsatisfiable at every relaxation")),
        )
        run = pipeline.segment_generated_site(site)
        for page_run in run.pages:
            assert page_run.segmentation.records == []
            assert (
                "unsatisfiable at every relaxation"
                in page_run.segmentation.meta["segmenter_error"]
            )


class TestMemoryStageCache:
    def test_round_trip_isolates_values(self):
        cache = MemoryStageCache()
        stored = cache.get_or_compute("s", ("k",), lambda: {"v": [1]})
        stored["v"].append(2)  # mutating a returned value...
        again = cache.get_or_compute("s", ("k",), lambda: {"v": [3]})
        assert again == {"v": [1]}  # ...never poisons the cache
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1

    def test_method_sweep_shares_upstream_stages(self):
        site = build_site("lee")
        details = [
            site.detail_pages(i) for i in range(len(site.list_pages))
        ]
        cache = MemoryStageCache()
        for method in ("csp", "prob"):
            SegmentationPipeline(method, cache=cache).segment_site(
                site.list_pages, details
            )
        # tokenize/template/extracts/observations hit on the second
        # method; only its segment stage (method in the key) missed.
        assert cache.stats.hits > 0
        segment_misses = 2 * len(site.list_pages)  # one per method/page
        shared_misses = cache.stats.misses - segment_misses
        warm = MemoryStageCache()
        SegmentationPipeline("csp", cache=warm).segment_site(
            site.list_pages, details
        )
        assert shared_misses == warm.stats.misses - len(site.list_pages)

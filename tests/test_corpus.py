"""Tests for the 12-site corpus (paper Section 6.1 setup)."""

from __future__ import annotations

import pytest

from repro.sitegen.corpus import (
    SITE_BUILDERS,
    TABLE4_ORDER,
    build_corpus,
    build_site,
)
from repro.template.finder import TemplateFinder

#: Table 4's per-site record counts (rows of the paper's table).
EXPECTED_COUNTS = {
    "amazon": (10, 10),
    "bnbooks": (10, 10),
    "allegheny": (20, 20),
    "butler": (15, 12),
    "lee": (16, 5),
    "michigan": (7, 16),
    "minnesota": (11, 19),
    "ohio": (10, 10),
    "canada411": (25, 5),
    "sprintcanada": (20, 20),
    "yahoo": (10, 10),
    "superpages": (3, 15),
}

#: Sites whose page template must fail (Table 4 note *a*): "Amazon,
#: BnBooks, Minnesota Corrections, Yahoo People and Superpages".
TEMPLATE_FAILURE_SITES = {"amazon", "bnbooks", "minnesota", "yahoo", "superpages"}


class TestCorpusShape:
    def test_twelve_sites_in_table4_order(self, corpus):
        assert corpus.names == list(TABLE4_ORDER)
        assert len(corpus.sites) == 12

    def test_record_counts(self, corpus):
        for site in corpus.sites:
            assert site.spec.records_per_page == EXPECTED_COUNTS[site.spec.name]

    def test_four_domains(self, corpus):
        domains = {site.spec.domain for site in corpus.sites}
        assert domains == {"books", "whitepages", "propertytax", "corrections"}

    def test_totals(self, corpus):
        assert corpus.total_list_pages == 24
        assert corpus.total_records == sum(
            a + b for a, b in EXPECTED_COUNTS.values()
        )

    def test_site_lookup(self, corpus):
        assert corpus.site("ohio").spec.name == "ohio"
        with pytest.raises(KeyError):
            corpus.site("nonexistent")

    def test_build_site_unknown(self):
        with pytest.raises(KeyError):
            build_site("nonexistent")

    def test_builders_cover_order(self):
        assert set(SITE_BUILDERS) == set(TABLE4_ORDER)


class TestCorpusDeterminism:
    def test_rebuild_is_identical(self, corpus):
        rebuilt = build_corpus()
        for first, second in zip(corpus.sites, rebuilt.sites):
            assert first.list_pages[0].html == second.list_pages[0].html
            assert first.list_pages[1].html == second.list_pages[1].html
            for page_index in range(2):
                for d1, d2 in zip(
                    first.detail_pages(page_index),
                    second.detail_pages(page_index),
                ):
                    assert d1.html == d2.html


class TestTemplateFates:
    """The corpus must reproduce the paper's per-site template outcomes."""

    def test_template_failures_match_paper(self, corpus):
        finder = TemplateFinder()
        failed = {
            site.spec.name
            for site in corpus.sites
            if not finder.find(site.list_pages).ok
        }
        assert failed == TEMPLATE_FAILURE_SITES

    def test_clean_sites_single_table_slot(self, corpus):
        finder = TemplateFinder()
        for site in corpus.sites:
            if site.spec.name in TEMPLATE_FAILURE_SITES:
                continue
            verdict = finder.find(site.list_pages)
            assert verdict.ok, f"{site.spec.name}: {verdict.reason}"
            assert verdict.table_slot_id is not None


class TestGroundTruthIntegrity:
    def test_every_row_has_detail_url_served(self, corpus):
        for site in corpus.sites:
            for page_index, truth in enumerate(site.truth):
                details = {p.url for p in site.detail_pages(page_index)}
                for row in truth.rows:
                    assert row.detail_url in details

    def test_first_field_always_present(self, corpus):
        for site in corpus.sites:
            first_field = site.spec.schema.fields[0].name
            for truth in site.truth:
                for row in truth.rows:
                    assert first_field in row.values

    def test_record_ids_unique(self, corpus):
        seen = set()
        for site in corpus.sites:
            for truth in site.truth:
                for row in truth.rows:
                    assert row.record_id not in seen
                    seen.add(row.record_id)

"""Golden-parity gate for the optimized hot path.

The PR-7 speedups (token interning, indexed matching, the compiled
WSAT inner loop, the exact-first unsat probe) are all *mechanical*:
they promise byte-identical segmentations, not merely equivalent ones.
This module holds them to it.  ``tests/data/hot_path_golden.json``
records, for every site of the standard benchmark corpus and both
segmentation methods, a digest of the pre-optimization pipeline's
output — captured at the seed commit, before any of the optimizations
landed.  The digest covers exactly what
:meth:`repro.runner.tasks.TaskResult.digest` covers: per page, the
URL, the rendered records, and the unassigned extract texts.  Solver
diagnostics and timings are deliberately outside it — those may change
(that is the point of the optimizations); the segmentation may not.

If an intentional behaviour change ever invalidates these digests,
re-record them with the recipe in the JSON file's ``note`` field and
say so loudly in the PR.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import SegmentationPipeline
from repro.runner.cache import fingerprint
from repro.sitegen.corpus import build_site

GOLDEN_PATH = Path(__file__).parent / "data" / "hot_path_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["sites"]

#: Sites whose list/detail inconsistencies push the CSP segmenter up
#: the relaxation ladder — the ones where solver-side shortcuts are
#: most tempting and parity is most at risk.
DIRTY_SITES = ("amazon", "bnbooks", "michigan", "minnesota")


def run_digest(site_name: str, method: str) -> str:
    """The output digest of one site under one segmentation method.

    Mirrors :meth:`repro.runner.tasks.TaskResult.digest` (via
    ``repro.runner.worker._outcomes``): url, rendered records,
    unassigned extract texts — nothing else.
    """
    run = SegmentationPipeline(method).segment_generated_site(
        build_site(site_name)
    )
    return fingerprint(
        "result",
        [
            (
                page_run.page.url,
                [str(record) for record in page_run.segmentation.records],
                [
                    observation.extract.text
                    for observation in page_run.segmentation.unassigned
                ],
            )
            for page_run in run.pages
        ],
    )


class TestGoldenCorpus:
    """Every corpus site matches its seed-commit digest, both methods."""

    @pytest.mark.parametrize("site_name", sorted(GOLDEN))
    @pytest.mark.parametrize("method", ("csp", "prob"))
    def test_site_matches_golden(self, site_name: str, method: str) -> None:
        assert run_digest(site_name, method) == GOLDEN[site_name][method], (
            f"{site_name}/{method} diverged from the pre-optimization "
            f"pipeline output; see module docstring before re-recording"
        )


class TestGoldenFileShape:
    """The golden file itself stays usable as a re-recording target."""

    def test_covers_both_methods_everywhere(self) -> None:
        assert len(GOLDEN) >= 8
        for site_name, digests in GOLDEN.items():
            assert set(digests) == {"csp", "prob"}, site_name
            for digest in digests.values():
                assert len(digest) == 64 and int(digest, 16) >= 0

    def test_dirty_sites_present(self) -> None:
        # The relaxation-ladder sites are the load-bearing cases; the
        # corpus (and this file) must not quietly lose them.
        assert set(DIRTY_SITES) <= set(GOLDEN)

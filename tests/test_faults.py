"""Tests for the deterministic fault-injection transport."""

from __future__ import annotations

import pytest

from repro.core.exceptions import (
    ConfigError,
    FetchError,
    PermanentFetchError,
    TransientFetchError,
)
from repro.sitegen.corpus import build_site
from repro.sitegen.faults import FaultKind, FaultPlan, FaultyTransport


class TestFaultPlanValidation:
    def test_rates_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(permanent_rate=-0.1)

    def test_fault_rates_summing_past_one_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(transient_rate=0.6, permanent_rate=0.5)

    def test_degenerate_knobs_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(max_transient_failures=0)
        with pytest.raises(ConfigError):
            FaultPlan(latency_s=-1.0)


class TestFaultPlanDeterminism:
    def test_same_seed_same_decisions(self):
        plan_a = FaultPlan(seed=7, transient_rate=0.3, permanent_rate=0.1)
        plan_b = FaultPlan(seed=7, transient_rate=0.3, permanent_rate=0.1)
        urls = [f"site-p0-detail{i}.html" for i in range(50)]
        assert [plan_a.fault_for(u) for u in urls] == [
            plan_b.fault_for(u) for u in urls
        ]

    def test_different_seeds_differ(self):
        urls = [f"d{i}.html" for i in range(100)]
        a = [FaultPlan(seed=1, transient_rate=0.5).fault_for(u) for u in urls]
        b = [FaultPlan(seed=2, transient_rate=0.5).fault_for(u) for u in urls]
        assert a != b

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=3, transient_rate=0.3)
        urls = [f"d{i}.html" for i in range(1000)]
        hit = sum(1 for u in urls if plan.fault_for(u) is FaultKind.TRANSIENT)
        assert 200 <= hit <= 400

    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(seed=9)
        assert all(
            plan.fault_for(f"u{i}") is FaultKind.NONE for i in range(50)
        )
        assert plan.latency_of("u0") == 0.0

    def test_failure_counts_within_bounds(self):
        plan = FaultPlan(seed=5, transient_rate=1.0, max_transient_failures=3)
        counts = {plan.failures_before_recovery(f"u{i}") for i in range(200)}
        assert counts <= {1, 2, 3}
        assert len(counts) > 1


class TestFaultyTransport:
    def _transport(self, **kwargs):
        site = build_site("ohio")
        return site, FaultyTransport(site, FaultPlan(**kwargs))

    def _urls_of_kind(self, site, plan, kind):
        return [u for u in site.urls() if plan.fault_for(u) is kind]

    def test_transient_url_recovers_after_k_failures(self):
        site, transport = self._transport(seed=11, transient_rate=1.0)
        url = site.truth[0].rows[0].detail_url
        failures = transport.plan.failures_before_recovery(url)
        for _ in range(failures):
            with pytest.raises(TransientFetchError):
                transport.fetch(url)
        page = transport.fetch(url)
        assert page.url == url
        assert transport.faults_raised["transient"] == failures

    def test_permanent_url_always_404s(self):
        site, transport = self._transport(seed=11, permanent_rate=1.0)
        url = site.truth[0].rows[0].detail_url
        for _ in range(3):
            with pytest.raises(PermanentFetchError):
                transport.fetch(url)

    def test_truncated_payload_is_shorter_and_stable(self):
        site, transport = self._transport(seed=11, truncated_rate=1.0)
        url = site.truth[0].rows[0].detail_url
        original = site.fetch(url)
        first = transport.fetch(url)
        second = transport.fetch(url)
        assert len(first.html) < len(original.html)
        assert first.html == second.html
        assert first is second  # damage rendered once, cached

    def test_garbled_payload_differs_but_is_deterministic(self):
        site = build_site("ohio")
        url = site.truth[0].rows[0].detail_url
        plan = FaultPlan(seed=13, garbled_rate=1.0)
        a = FaultyTransport(site, plan).fetch(url)
        b = FaultyTransport(site, plan).fetch(url)
        assert a.html != site.fetch(url).html
        assert len(a.html) == len(site.fetch(url).html)
        assert a.html == b.html

    def test_latency_charged_to_slow_urls_only(self):
        site, transport = self._transport(seed=17, latency_rate=0.5, latency_s=0.4)
        latencies = {transport.latency_of(u) for u in site.urls()}
        assert latencies == {0.0, 0.4}

    def test_dead_urls_pass_through_as_fetch_errors(self):
        _, transport = self._transport(seed=11)
        with pytest.raises(FetchError):
            transport.fetch("no-such-page.html")

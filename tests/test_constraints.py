"""Tests for the pseudo-boolean constraint representation."""

from __future__ import annotations

import pytest

from repro.csp.constraints import ConstraintSystem, LinearConstraint, Relation


class TestLinearConstraint:
    def test_lhs(self):
        constraint = LinearConstraint(
            terms=((1, 0), (-1, 1), (2, 2)), relation=Relation.LE, bound=1
        )
        assert constraint.lhs([1, 1, 1]) == 2

    @pytest.mark.parametrize(
        "relation,lhs,bound,expected",
        [
            (Relation.LE, 3, 1, 2),
            (Relation.LE, 1, 1, 0),
            (Relation.LE, 0, 1, 0),
            (Relation.GE, 0, 1, 1),
            (Relation.GE, 2, 1, 0),
            (Relation.EQ, 3, 1, 2),
            (Relation.EQ, 0, 1, 1),
            (Relation.EQ, 1, 1, 0),
        ],
    )
    def test_violation_of(self, relation, lhs, bound, expected):
        constraint = LinearConstraint(
            terms=((1, 0),), relation=relation, bound=bound
        )
        assert constraint.violation_of(lhs) == expected

    def test_is_satisfied(self):
        constraint = LinearConstraint(
            terms=((1, 0), (1, 1)), relation=Relation.EQ, bound=1
        )
        assert constraint.is_satisfied([1, 0])
        assert constraint.is_satisfied([0, 1])
        assert not constraint.is_satisfied([1, 1])
        assert not constraint.is_satisfied([0, 0])

    def test_str_contains_label(self):
        constraint = LinearConstraint(
            terms=((1, 0),), relation=Relation.LE, bound=1, label="uniq[0]"
        )
        assert "uniq[0]" in str(constraint)


class TestConstraintSystem:
    def test_add_validates_var_range(self):
        system = ConstraintSystem(num_vars=2)
        with pytest.raises(ValueError):
            system.add([(1, 5)], Relation.LE, 1)

    def test_add_rejects_repeated_var(self):
        system = ConstraintSystem(num_vars=2)
        with pytest.raises(ValueError):
            system.add([(1, 0), (1, 0)], Relation.LE, 1)

    def test_hard_soft_split(self):
        system = ConstraintSystem(num_vars=2)
        system.add([(1, 0)], Relation.EQ, 1, hard=True)
        system.add([(1, 1)], Relation.GE, 1, hard=False)
        assert system.is_satisfied([1, 0])  # soft violation ignored
        assert system.hard_violation([1, 0]) == 0
        assert system.total_violation([1, 0]) == 1
        assert len(system.hard_constraints) == 1

    def test_violated_lists_offenders(self):
        system = ConstraintSystem(num_vars=2)
        satisfied = system.add([(1, 0)], Relation.LE, 1, label="ok")
        violated = system.add([(1, 0), (1, 1)], Relation.LE, 1, label="bad")
        offenders = system.violated([1, 1])
        assert offenders == [violated]

    def test_weighted_violation(self):
        system = ConstraintSystem(num_vars=1)
        system.add([(1, 0)], Relation.EQ, 0, weight=2.5)
        assert system.total_violation([1]) == 2.5

    def test_stats_by_label(self):
        system = ConstraintSystem(num_vars=3)
        system.add([(1, 0)], Relation.EQ, 1, label="uniq[0]")
        system.add([(1, 1)], Relation.EQ, 1, label="uniq[1]")
        system.add([(1, 0), (1, 2)], Relation.LE, 1, label="pos[0,5]")
        stats = system.stats()
        assert stats["uniq"] == 2
        assert stats["pos"] == 1
        assert stats["variables"] == 3
        assert stats["constraints"] == 3

    def test_var_name_fallback(self):
        system = ConstraintSystem(num_vars=2, var_names=["x[0,1]"])
        assert system.var_name(0) == "x[0,1]"
        assert system.var_name(1) == "x1"

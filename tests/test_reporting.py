"""Tests for aggregation, note derivation and table rendering."""

from __future__ import annotations

from repro.core.evaluation import PageScore
from repro.csp.segmenter import CspSegmenter
from repro.prob.segmenter import ProbabilisticSegmenter
from repro.reporting.aggregate import (
    ExperimentResult,
    PageResult,
    notes_from_meta,
)
from repro.reporting.tables import (
    render_assignment_table,
    render_observation_table,
    render_position_table,
    render_table4,
)


class TestNotes:
    def test_clean_meta_no_notes(self):
        meta = {"template_ok": True, "whole_page": False, "level": 0}
        assert notes_from_meta(meta) == ""

    def test_template_failure_gives_ab(self):
        meta = {"template_ok": False, "whole_page": True}
        assert notes_from_meta(meta) == "ab"

    def test_relaxation_gives_cd(self):
        meta = {"template_ok": True, "whole_page": False, "level": 2, "relaxed": True}
        assert notes_from_meta(meta) == "cd"

    def test_total_failure_gives_c(self):
        meta = {"solution_found": False}
        assert "c" in notes_from_meta(meta)


class TestExperimentResult:
    def make_result(self):
        result = ExperimentResult()
        result.add(PageResult("s1", 0, "csp", PageScore(cor=10), notes=""))
        result.add(PageResult("s1", 1, "csp", PageScore(cor=5, inc=5), notes="cd"))
        result.add(PageResult("s1", 0, "prob", PageScore(cor=9, inc=1), notes=""))
        result.add(PageResult("s1", 1, "prob", PageScore(cor=8, inc=2), notes=""))
        return result

    def test_totals(self):
        result = self.make_result()
        total = result.totals("csp")
        assert total.cor == 15 and total.inc == 5

    def test_clean_pages_follow_csp(self):
        result = self.make_result()
        assert result.clean_pages() == {("s1", 0)}

    def test_clean_totals_filter_both_methods(self):
        result = self.make_result()
        assert result.clean_totals("csp").cor == 10
        assert result.clean_totals("prob").cor == 9

    def test_methods_listing(self):
        assert self.make_result().methods() == ["csp", "prob"]


class TestRenderers:
    def test_observation_table_lists_d_sets(self, paper_table):
        rendered = render_observation_table(paper_table)
        assert "John Smith" in rendered
        assert "r0,r1" in rendered

    def test_position_table_lists_cells(self, paper_table):
        rendered = render_position_table(paper_table)
        assert "pos_0^730" in rendered
        assert "pos_1^578" in rendered

    def test_assignment_table_marks_cells(self, paper_table):
        segmentation = CspSegmenter().segment(paper_table)
        rendered = render_assignment_table(segmentation)
        assert "r0" in rendered and "r2" in rendered
        assert rendered.count("1") >= 11

    def test_assignment_table_shows_unassigned(self, paper_table):
        segmentation = ProbabilisticSegmenter().segment(paper_table)
        rendered = render_assignment_table(segmentation)
        assert "unassigned" not in rendered

    def test_table4_renders_all_rows(self):
        result = ExperimentResult()
        result.add(PageResult("ohio", 0, "prob", PageScore(cor=10), notes=""))
        result.add(PageResult("ohio", 0, "csp", PageScore(cor=10), notes="d"))
        rendered = render_table4(result)
        assert "ohio p0" in rendered
        assert "Precision" in rendered and "Recall" in rendered
        assert "Relax constraints" in rendered


class TestMethodSweepSharing:
    """A custom-corpus sweep shares upstream stages without changing rows."""

    def test_shared_cache_rows_identical_and_method_major(self):
        from repro.reporting.experiment import run_corpus, run_site
        from repro.sitegen.corpus import Corpus, build_site

        corpus = Corpus(sites=[build_site("lee"), build_site("ohio")])
        swept = run_corpus(corpus=corpus, methods=("prob", "csp"))

        serial = []
        for method in ("prob", "csp"):
            for site in corpus.sites:
                serial.extend(run_site(site, method))
        assert [
            (r.site, r.page_index, r.method, r.score, r.notes, r.meta)
            for r in swept.pages
        ] == [
            (r.site, r.page_index, r.method, r.score, r.notes, r.meta)
            for r in serial
        ]

    def test_shared_cache_actually_shares(self):
        from repro.reporting.experiment import run_site
        from repro.runner.cache import MemoryStageCache
        from repro.sitegen.corpus import build_site

        site = build_site("lee")
        cache = MemoryStageCache()
        run_site(site, "prob", cache=cache)
        misses_after_first = cache.stats.misses
        run_site(site, "csp", cache=cache)
        # The second method recomputes only its segment stage.
        assert cache.stats.misses - misses_after_first == len(site.list_pages)
        assert cache.stats.hits > 0

"""Tests for the queryable relational store (:mod:`repro.store`).

Covers the sqlite layer's failure modes (corrupt file, locked
database, closed handle), idempotent ingestion (unchanged re-ingest is
a no-op, changed content replaces in one transaction, degraded runs
are skipped), the cross-site attribute catalog's ingest-order
independence, ranked column-keyword queries with provenance-tagged
rows, and the two production ingest paths: ``segment-dir --store``
(batch) and the serve path's online ingest + ``/query``.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.obs import Observability
from repro.store import (
    Catalog,
    RelationalStore,
    StoreError,
    ingest_batch,
    ingest_pages,
    page_entry,
    parse_keywords,
    query_store,
)
from repro.store.catalog import canonical_label, match_strength


def wire_record(*texts, columns=None):
    return {"texts": list(texts), "columns": columns}


def entry(url, records, names=None):
    return {
        "url": url,
        "records": records,
        "record_count": len(records),
        "names": names or {},
    }


INMATES = [
    entry(
        "inmates-list0.html",
        [
            wire_record("Ann Lee", "Fraud", "5,000", columns=[0, 1, 2]),
            wire_record("Bo Park", "Theft", "2,500", columns=[0, 1, 2]),
        ],
        names={"L0": "Name", "L1": "Charge", "L2": "Bail"},
    )
]

PARCELS = [
    entry(
        "parcels-list0.html",
        [
            wire_record("12-001", "Ann Lee", "90,000", columns=[0, 1, 2]),
            wire_record("12-002", "Cy Diaz", "75,500", columns=[0, 1, 2]),
        ],
        names={"L0": "Parcel ID", "L1": "Owner Name", "L2": "Value"},
    )
]


@pytest.fixture()
def store(tmp_path):
    with RelationalStore(tmp_path / "tables.db", obs=Observability()) as s:
        yield s


class TestStoreDb:
    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "tables.db"
        with RelationalStore(path):
            pass
        assert path.is_file()

    def test_corrupt_file_raises_store_error(self, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"this is not a sqlite database at all\x00\x01")
        with pytest.raises(StoreError):
            RelationalStore(path)

    def test_locked_database_raises_store_error(self, tmp_path):
        path = tmp_path / "locked.db"
        with RelationalStore(path):
            pass  # lay down the schema first
        blocker = sqlite3.connect(str(path), isolation_level=None)
        try:
            blocker.execute("BEGIN EXCLUSIVE")
            # Opening runs the schema transaction, so even the handle
            # itself refuses with StoreError while another writer holds
            # the file.
            with pytest.raises(StoreError):
                RelationalStore(path, timeout_s=0.05)
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()

    def test_closed_store_raises_store_error(self, tmp_path):
        store = RelationalStore(tmp_path / "tables.db")
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError):
            store.execute("SELECT 1")

    def test_bad_sql_is_store_error_not_sqlite_error(self, store):
        with pytest.raises(StoreError):
            store.execute("SELECT * FROM no_such_table")

    def test_transaction_rolls_back_on_error(self, store):
        before = store.counts()
        with pytest.raises(StoreError):
            with store.transaction() as conn:
                conn.execute(
                    "INSERT INTO attributes (canonical, display)"
                    " VALUES ('x', 'X')"
                )
                conn.execute("INSERT INTO nope VALUES (1)")
        assert store.counts() == before


class TestIngest:
    def test_insert_populates_all_tables(self, store):
        assert ingest_pages(store, "jail", "prob", INMATES) == "inserted"
        counts = store.counts()
        assert counts["sites"] == 1
        assert counts["site_columns"] == 3
        assert counts["cells"] == 6
        (site,) = store.sites()
        assert site["site_id"] == "jail"
        assert site["record_count"] == 2

    def test_reingest_unchanged_is_noop(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        before = store.counts()
        obs = store.obs
        assert ingest_pages(store, "jail", "prob", INMATES) == "unchanged"
        assert store.counts() == before
        assert obs.metrics.counter("store.ingest.unchanged").value == 1

    def test_changed_content_replaces_cells(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        changed = [
            entry(
                "inmates-list0.html",
                [wire_record("Zed Q", "Arson", columns=[0, 1])],
                names={"L0": "Name", "L1": "Charge"},
            )
        ]
        assert ingest_pages(store, "jail", "prob", changed) == "replaced"
        counts = store.counts()
        assert counts["sites"] == 1
        assert counts["cells"] == 2
        values = {value for (value,) in store.execute("SELECT value FROM cells")}
        assert "Ann Lee" not in values and "Zed Q" in values

    def test_empty_ingest_refused(self, store):
        with pytest.raises(StoreError):
            ingest_pages(store, "jail", "prob", [])
        with pytest.raises(StoreError):
            ingest_pages(store, "", "prob", INMATES)

    def test_positional_fallback_on_column_mismatch(self, store):
        # Attached extracts make texts longer than columns; cells must
        # still land, positionally.
        pages = [
            entry(
                "x-list0.html",
                [{"texts": ["a", "b", "c"], "columns": [0, 1]}],
            )
        ]
        ingest_pages(store, "x", "prob", pages)
        assert store.counts()["cells"] == 3

    def test_duplicate_column_joins_values(self, store):
        pages = [
            entry(
                "x-list0.html",
                [wire_record("a", "b", columns=[0, 0])],
            )
        ]
        ingest_pages(store, "x", "prob", pages)
        ((value,),) = store.execute("SELECT value FROM cells")
        assert value == "a / b"

    def test_batch_skips_quarantined_and_wireless(self, store):
        from repro.runner.engine import BatchResult
        from repro.runner.tasks import PageOutcome, TaskResult

        ok = TaskResult(
            task_id="good:prob",
            status="ok",
            pages=[PageOutcome(url="g-list0.html", wire=INMATES[0])],
        )
        quarantined = TaskResult(
            task_id="bad:prob",
            status="quarantined",
            pages=[PageOutcome(url="b-list0.html", wire=PARCELS[0])],
        )
        wireless = TaskResult(
            task_id="plain:prob",
            status="ok",
            pages=[PageOutcome(url="p-list0.html", records=["r0: x"])],
        )
        batch = BatchResult(results=[ok, quarantined, wireless])
        obs = store.obs
        report = ingest_batch(store, batch, method="prob", obs=obs)
        assert report.as_dict() == {
            "sites": 1,
            "rows": 2,
            "unchanged": 0,
            "replaced": 0,
            "skipped": 2,
        }
        assert obs.metrics.counter("store.ingest.skipped").value == 2
        assert [site["site_id"] for site in store.sites()] == ["good"]


class TestCatalog:
    def test_canonical_label(self):
        assert canonical_label("  Owner Name: ") == "owner name"
        assert canonical_label("Assessed-Value") == "assessed value"
        assert canonical_label("L3") == "l3"

    def test_match_strength(self):
        assert match_strength("owner name", "owner name") == 1.0
        assert match_strength("owner", "owner name") == 0.5
        assert match_strength("owner name", "owner") == 0.5
        assert match_strength("owner", "@site/prob:L0") == 0.0
        assert match_strength("owner", "charge") == 0.0

    def test_matching_columns_share_attribute(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        ingest_pages(store, "county", "prob", PARCELS)
        rows = dict(
            store.execute(
                "SELECT site_id || '/' || column_key, attribute_id"
                " FROM site_columns"
            )
        )
        # No shared exact label between the two fixtures...
        assert rows["jail/L0"] != rows["county/L1"]
        # ...until a third site reuses one.
        ingest_pages(
            store,
            "jail2",
            "prob",
            [
                entry(
                    "j2-list0.html",
                    [wire_record("Di Fox", columns=[0])],
                    names={"L0": "Name"},
                )
            ],
        )
        rows = dict(
            store.execute(
                "SELECT site_id || '/' || column_key, attribute_id"
                " FROM site_columns"
            )
        )
        assert rows["jail/L0"] == rows["jail2/L0"]

    def test_attribute_ids_ingest_order_independent(self, tmp_path):
        def catalog_view(order):
            with RelationalStore(tmp_path / f"{order[0][0]}.db") as store:
                for site_id, pages in order:
                    ingest_pages(store, site_id, "prob", pages)
                return sorted(
                    store.execute(
                        "SELECT c.site_id, c.column_key, a.canonical"
                        " FROM site_columns c JOIN attributes a"
                        " ON a.attribute_id = c.attribute_id"
                    )
                )

        forward = catalog_view([("jail", INMATES), ("county", PARCELS)])
        backward = catalog_view([("county", PARCELS), ("jail", INMATES)])
        assert forward == backward

    def test_unnamed_columns_stay_site_local(self, store):
        ingest_pages(
            store,
            "a",
            "prob",
            [entry("a-list0.html", [wire_record("x", columns=[0])])],
        )
        ingest_pages(
            store,
            "b",
            "prob",
            [entry("b-list0.html", [wire_record("y", columns=[0])])],
        )
        rows = dict(
            store.execute("SELECT site_id, attribute_id FROM site_columns")
        )
        # Both columns are anonymous L0s yet must not share an attribute.
        assert rows["a"] != rows["b"]
        catalog = Catalog(store)
        assert catalog.match_keyword("l0") == {}


class TestQuery:
    @pytest.fixture()
    def loaded(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        ingest_pages(store, "county", "prob", PARCELS)
        return store

    def test_parse_keywords(self):
        assert parse_keywords("name, charge, bail") == [
            "name",
            "charge",
            "bail",
        ]
        assert parse_keywords(["name", "charge,bail", " ", "!!"]) == [
            "name",
            "charge",
            "bail",
        ]

    def test_no_keywords_raises(self, loaded):
        with pytest.raises(ValueError):
            query_store(loaded, "  ,  ")

    def test_full_match_outranks_partial(self, loaded):
        result = query_store(loaded, "name, charge, bail")
        assert [hit.site_id for hit in result.tables] == ["jail", "county"]
        jail, county = result.tables
        assert jail.score > county.score
        assert set(jail.columns) == {"name", "charge", "bail"}
        # "name" word-matches county's "Owner Name" at half strength.
        assert county.columns["name"]["strength"] == 0.5

    def test_rows_carry_provenance(self, loaded):
        result = query_store(loaded, "charge")
        assert [hit.site_id for hit in result.tables] == ["jail"]
        row = result.rows[0]
        assert row["site"] == "jail"
        assert row["page"] == "inmates-list0.html"
        assert row["record"] == 0
        assert row["values"] == {"charge": "Fraud"}

    def test_union_follows_rank_order(self, loaded):
        result = query_store(loaded, "name")
        assert [row["site"] for row in result.rows] == [
            "jail",
            "jail",
            "county",
            "county",
        ]
        assert result.as_dict()["row_count"] == 4

    def test_limit_spreads_over_ranked_tables(self, loaded):
        result = query_store(loaded, "name", limit=3)
        assert len(result.rows) == 3
        assert [row["site"] for row in result.rows] == [
            "jail",
            "jail",
            "county",
        ]

    def test_method_filter(self, loaded):
        assert query_store(loaded, "name", method="csp").tables == []
        assert query_store(loaded, "name", method="prob").tables

    def test_as_dict_is_json_ready(self, loaded):
        import json

        payload = query_store(loaded, "name, bail").as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["keywords"] == ["name", "bail"]
        assert payload["tables"][0]["site"] == "jail"


class TestPageEntry:
    def test_names_from_detail_pages(self):
        from repro.sitegen.corpus import build_site

        site = build_site("allegheny")
        from repro.core.pipeline import SegmentationPipeline
        from repro.serve.schema import segmentation_records

        run = SegmentationPipeline("prob").segment_generated_site(site)
        page_run = run.pages[0]
        made = page_entry(
            page_run.page.url,
            segmentation_records(page_run.segmentation),
            site.detail_pages(0),
        )
        assert made["names"].get("L0") == "Parcel ID"
        assert made["names"].get("L1") == "Owner"

    def test_no_details_no_names(self):
        made = page_entry("u.html", [wire_record("a", columns=[0])])
        assert made["names"] == {}
        assert made["record_count"] == 1


class TestBatchPath:
    def test_segment_dir_batch_collects_wire_and_ingests(self, tmp_path):
        from repro.runner import BatchRunner, RunnerConfig, tasks_for_sites

        batch = BatchRunner(
            RunnerConfig(collect_wire=True)
        ).run(tasks_for_sites(["ohio"], method="prob"))
        assert batch.ok
        assert all(
            page.wire is not None
            for result in batch.results
            for page in result.pages
        )
        with RelationalStore(tmp_path / "t.db", obs=Observability()) as store:
            report = ingest_batch(store, batch, method="prob")
            assert report.sites == 1 and report.rows > 0
            result = query_store(store, "name")
            assert result.tables[0].site_id == "ohio"
            # Ingesting the same batch again changes nothing.
            before = store.counts()
            again = ingest_batch(store, batch, method="prob")
            assert again.unchanged == 1 and again.sites == 0
            assert store.counts() == before

    def test_wire_off_by_default(self):
        from repro.runner import BatchRunner, RunnerConfig, tasks_for_sites

        batch = BatchRunner(RunnerConfig()).run(
            tasks_for_sites(["superpages"], method="prob")
        )
        assert all(
            page.wire is None
            for result in batch.results
            for page in result.pages
        )


class TestServePath:
    @pytest.fixture(scope="class")
    def ohio_payload(self):
        from repro.serve import payload_from_pages
        from repro.sitegen.corpus import build_site

        site = build_site("ohio")
        return payload_from_pages(
            "ohio",
            site.list_pages,
            [site.detail_pages(i) for i in range(len(site.list_pages))],
        )

    def test_online_ingest_then_query(self, tmp_path, ohio_payload):
        from repro.serve import SegmentationService, ServiceConfig

        service = SegmentationService(
            ServiceConfig(method="prob", store_path=str(tmp_path / "s.db"))
        )
        service.segment(ohio_payload)
        answer = service.query(["name"])
        assert answer["tables"][0]["site"] == "ohio"
        assert answer["row_count"] > 0
        assert answer["rows"][0]["page"].startswith("ohio-")

    def test_warm_path_reingest_is_noop(self, tmp_path, ohio_payload):
        from repro.serve import SegmentationService, ServiceConfig

        service = SegmentationService(
            ServiceConfig(method="prob", store_path=str(tmp_path / "w.db"))
        )
        cold = service.segment(ohio_payload)
        before = service.store.counts()
        warm = service.segment(ohio_payload)
        assert warm["path"] == "wrapper"
        assert service.store.counts() == before
        assert [p["records"] for p in cold["pages"]] == [
            p["records"] for p in warm["pages"]
        ]

    def test_query_without_store_is_404(self):
        from repro.serve import SegmentationService, ServeError, ServiceConfig

        service = SegmentationService(ServiceConfig(method="prob"))
        with pytest.raises(ServeError) as excinfo:
            service.query(["name"])
        assert excinfo.value.status == 404

    def test_empty_query_is_400(self, tmp_path):
        from repro.serve import SegmentationService, ServeError, ServiceConfig

        service = SegmentationService(
            ServiceConfig(method="prob", store_path=str(tmp_path / "q.db"))
        )
        with pytest.raises(ServeError) as excinfo:
            service.query([" , "])
        assert excinfo.value.status == 400

    def test_broken_store_never_breaks_the_response(
        self, tmp_path, ohio_payload
    ):
        from repro.serve import SegmentationService, ServiceConfig

        service = SegmentationService(
            ServiceConfig(method="prob", store_path=str(tmp_path / "b.db"))
        )
        service.store.close()  # simulate a store failing mid-flight
        response = service.segment(ohio_payload)
        assert response["record_count"] > 0


class TestRemoveSite:
    def test_remove_then_query_returns_nothing(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        ingest_pages(store, "county", "prob", PARCELS)
        removed = store.remove_site("jail")
        # All three jail attributes orphan: county's "Owner Name" is a
        # distinct catalog attribute that only word-matches "Name".
        assert removed == {
            "sites": 1,
            "columns": 3,
            "cells": 6,
            "attributes": 3,
        }
        result = query_store(store, "charge")
        assert result.tables == []
        assert result.rows == []
        # The untouched site still answers.
        result = query_store(store, "owner")
        assert [hit.site_id for hit in result.tables] == ["county"]

    def test_remove_prunes_only_orphaned_attributes(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        ingest_pages(store, "county", "prob", PARCELS)
        store.remove_site("jail")
        catalog = {
            row[0]
            for row in store.execute("SELECT canonical FROM attributes")
        }
        assert catalog.isdisjoint({"name", "charge", "bail"})
        assert {"parcel id", "owner name", "value"} <= catalog

    def test_remove_nonexistent_is_noop(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        before = store.counts()
        removed = store.remove_site("never-ingested")
        assert removed == {
            "sites": 0,
            "columns": 0,
            "cells": 0,
            "attributes": 0,
        }
        assert store.counts() == before

    def test_remove_single_method_keeps_other_methods(self, store):
        ingest_pages(store, "jail", "prob", INMATES)
        ingest_pages(store, "jail", "csp", INMATES)
        removed = store.remove_site("jail", method="prob")
        assert removed["sites"] == 1
        assert removed["attributes"] == 0  # csp columns still reference them
        (site,) = store.sites()
        assert site["method"] == "csp"

"""Tests for the crawler, fetcher and page classifier."""

from __future__ import annotations

import pytest

from repro.core.exceptions import CrawlError, FetchError
from repro.crawl.classifier import ClassifierConfig, PageClassifier, page_similarity
from repro.crawl.crawler import Crawler, crawl_generated_site, extract_links
from repro.crawl.fetcher import SiteFetcher
from repro.sitegen.corpus import build_site
from repro.webdoc.page import Page


class TestExtractLinks:
    def test_document_order(self):
        html = '<a href="b.html">x</a><p><a href="a.html">y</a></p>'
        assert extract_links(html) == ["b.html", "a.html"]

    def test_duplicates_first_occurrence(self):
        html = '<a href="d.html">name</a> <a href="d.html">More Info</a>'
        assert extract_links(html) == ["d.html"]

    def test_fragments_and_empty_skipped(self):
        html = '<a href="#top">up</a><a href="">x</a><a href="real.html">y</a>'
        assert extract_links(html) == ["real.html"]

    def test_no_links(self):
        assert extract_links("<p>nothing here</p>") == []


class TestFetcher:
    def test_caching_counts_once(self):
        site = build_site("ohio")
        fetcher = SiteFetcher(site)
        url = site.truth[0].rows[0].detail_url
        fetcher.fetch(url)
        fetcher.fetch(url)
        assert fetcher.requests == 1

    def test_dead_link_counted(self):
        site = build_site("ohio")
        fetcher = SiteFetcher(site)
        with pytest.raises(FetchError):
            fetcher.fetch("missing.html")
        assert fetcher.failures == 1
        assert fetcher.try_fetch("missing.html") is None

    def test_dead_link_negative_cached(self):
        # Repeated fetches of the same dead URL must answer from the
        # negative cache: one request, one failure, however often asked.
        site = build_site("ohio")
        fetcher = SiteFetcher(site)
        for _ in range(5):
            assert fetcher.try_fetch("missing.html") is None
        with pytest.raises(FetchError):
            fetcher.fetch("missing.html")
        assert fetcher.requests == 1
        assert fetcher.failures == 1
        assert fetcher.dead_urls == frozenset({"missing.html"})

    def test_cached_probe(self):
        site = build_site("ohio")
        fetcher = SiteFetcher(site)
        url = site.truth[0].rows[0].detail_url
        assert fetcher.cached(url) is None
        page = fetcher.fetch(url)
        assert fetcher.cached(url) is page

    def test_reset_clears_negative_cache(self):
        site = build_site("ohio")
        fetcher = SiteFetcher(site)
        assert fetcher.try_fetch("missing.html") is None
        assert fetcher.try_fetch("gone.html") is None
        assert fetcher.reset() == 2
        assert fetcher.dead_urls == frozenset()
        # The next fetch of a previously dead URL hits the site again.
        assert fetcher.try_fetch("missing.html") is None
        assert fetcher.requests == 3
        # Positive cache survives the reset.
        url = site.truth[0].rows[0].detail_url
        page = fetcher.fetch(url)
        fetcher.reset()
        assert fetcher.cached(url) is page

    def test_negative_max_age_expires_entries(self):
        site = build_site("ohio")
        fetcher = SiteFetcher(site, negative_max_age=2)
        assert fetcher.try_fetch("missing.html") is None
        assert fetcher.requests == 1
        # Still within the age window: answered from the cache.
        assert fetcher.try_fetch("missing.html") is None
        assert fetcher.requests == 1
        # Two live requests later the entry expires and is re-tried.
        fetcher.fetch(site.truth[0].rows[0].detail_url)
        fetcher.fetch(site.truth[0].rows[1].detail_url)
        assert fetcher.try_fetch("missing.html") is None
        assert fetcher.requests == 4

    def test_negative_max_age_validated(self):
        with pytest.raises(ValueError):
            SiteFetcher(build_site("ohio"), negative_max_age=0)


class TestClassifier:
    def test_same_template_pages_similar(self):
        site = build_site("ohio")
        details = site.detail_pages(0)
        assert page_similarity(details[0], details[1]) > 0.5

    def test_different_template_pages_dissimilar(self):
        site = build_site("ohio")
        detail = site.detail_pages(0)[0]
        ad = site.fetch("ohio-ad0.html")
        assert page_similarity(detail, ad) < 0.3

    def test_identical_pages_similarity_one(self):
        page = Page("x", "<p>same content</p>")
        assert page_similarity(page, page) == 1.0

    def test_clusters_split_details_from_ads(self):
        site = build_site("ohio")
        pages = site.detail_pages(0) + [site.fetch("ohio-ad0.html")]
        clusters = PageClassifier().clusters(pages)
        sizes = sorted(len(cluster) for cluster in clusters)
        assert sizes == [1, 10]

    def test_split_details_preserves_order(self):
        site = build_site("ohio")
        details = site.detail_pages(0)
        mixed = [site.fetch("ohio-ad0.html")] + details
        found, others = PageClassifier().split_details(mixed)
        assert [p.url for p in found] == [p.url for p in details]
        assert len(others) == 1

    def test_empty_input(self):
        details, others = PageClassifier().split_details([])
        assert details == [] and others == []

    def test_threshold_config(self):
        # An absurd threshold keeps everything separate.
        site = build_site("ohio")
        pages = site.detail_pages(0)[:3]
        clusters = PageClassifier(ClassifierConfig(similarity_threshold=1.01)).clusters(pages)
        assert len(clusters) == 3

    def test_one_tokenization_pass_per_page(self, monkeypatch):
        # Regression: the O(n²) clustering loop used to rebuild both
        # pages' token-text sets on every pairwise call.  Each page
        # must now be tokenized exactly once, however many comparisons
        # it participates in.
        import repro.tokens.tokenizer as tokenizer_module

        site = build_site("ohio")
        pages = [
            Page(page.url, page.html)
            for page in site.detail_pages(0) + [site.fetch("ohio-ad0.html")]
        ]
        calls: list[str] = []
        real_tokenize = tokenizer_module.tokenize_html

        def counting_tokenize(html):
            calls.append(html)
            return real_tokenize(html)

        monkeypatch.setattr(
            tokenizer_module, "tokenize_html", counting_tokenize
        )
        PageClassifier().clusters(pages)
        assert len(calls) == len(pages)


class TestCrawler:
    @pytest.mark.parametrize("name", ["ohio", "allegheny", "superpages", "amazon"])
    def test_crawl_recovers_detail_pages_in_order(self, name):
        site = build_site(name)
        _, details_per_list, results = crawl_generated_site(site)
        for page_index, crawled in enumerate(details_per_list):
            expected = [p.url for p in site.detail_pages(page_index)]
            assert [p.url for p in crawled] == expected
            assert results[page_index].dead_links  # chrome links 404

    def test_ads_classified_as_other(self):
        site = build_site("ohio")
        _, _, results = crawl_generated_site(site)
        other_urls = {p.url for p in results[0].other_pages}
        assert "ohio-ad0.html" in other_urls

    def test_unfetchable_page_raises(self):
        site = build_site("ohio")
        crawler = Crawler(SiteFetcher(site))
        lonely = Page("x", '<a href="gone.html">only dead link</a>')
        with pytest.raises(CrawlError):
            crawler.collect(lonely)

    def test_try_collect_records_failure_instead_of_raising(self):
        site = build_site("ohio")
        crawler = Crawler(SiteFetcher(site))
        lonely = Page("x", '<a href="gone.html">only dead link</a>')
        result = crawler.try_collect(lonely)
        assert result.failed
        assert "no fetchable pages" in result.error
        assert result.detail_pages == []
        assert result.dead_links == ["gone.html"]

    def test_one_degenerate_list_page_does_not_abort_site(self):
        # A site where one list page's links are all dead must still
        # yield the other pages' crawls, with the failure recorded.
        site = build_site("ohio")
        dead = Page(
            site.list_pages[0].url,
            '<a href="gone-a.html">x</a> <a href="gone-b.html">y</a>',
            kind="list",
        )
        original = site.list_pages[0]
        site.list_pages[0] = dead
        try:
            list_pages, details_per_list, results = crawl_generated_site(site)
        finally:
            site.list_pages[0] = original
        assert len(results) == len(site.list_pages)
        assert results[0].failed and details_per_list[0] == []
        assert not results[1].failed
        expected = [p.url for p in site.detail_pages(1)]
        assert [p.url for p in details_per_list[1]] == expected

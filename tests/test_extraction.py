"""Tests for extract extraction, matching and observation building."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.extraction.extracts import extract_strings
from repro.extraction.matching import MatchOptions, PageIndex, find_occurrences
from repro.extraction.observations import ObservationTable
from repro.tokens.tokenizer import tokenize_html
from repro.webdoc.page import Page


class TestExtractStrings:
    def test_rows_split_at_tags(self):
        extracts = extract_strings(
            tokenize_html("<tr><td>John Smith</td><td>(740) 335-5555</td></tr>")
        )
        assert [e.text for e in extracts] == ["John Smith", "(740) 335-5555"]

    def test_disallowed_punct_splits(self):
        extracts = extract_strings(tokenize_html("John Smith | Findlay"))
        assert [e.text for e in extracts] == ["John Smith", "Findlay"]

    def test_allowed_punct_kept_inside(self):
        extracts = extract_strings(tokenize_html("Findlay, OH 45840"))
        assert [e.text for e in extracts] == ["Findlay, OH 45840"]

    def test_pure_punct_runs_dropped(self):
        extracts = extract_strings(tokenize_html("a<br>--<br>b"))
        assert [e.text for e in extracts] == ["a", "b"]

    def test_indices_sequential(self):
        extracts = extract_strings(tokenize_html("a<br>b<br>c"))
        assert [e.index for e in extracts] == [0, 1, 2]

    def test_start_token_index_points_into_stream(self):
        tokens = tokenize_html("<p>alpha</p><p>beta gamma</p>")
        extracts = extract_strings(tokens)
        beta = extracts[1]
        assert tokens[beta.start_token_index].text == "beta"

    def test_empty_input(self):
        assert extract_strings([]) == []

    def test_texts_key(self):
        (extract,) = extract_strings(tokenize_html("John Smith"))
        assert extract.texts == ("John", "Smith")
        assert len(extract) == 2

    @given(st.text(alphabet=st.sampled_from(list("ab <>|.,")), max_size=60))
    def test_extracts_never_contain_separators(self, soup):
        from repro.tokens.tokenizer import is_separator

        for extract in extract_strings(tokenize_html(soup)):
            assert not any(is_separator(token) for token in extract.tokens)


class TestMatching:
    def test_separator_tolerant_match(self):
        # Paper footnote: "FirstName LastName" matches
        # "FirstName <br>LastName" on the detail page.
        detail = Page("d", "FirstName<br>LastName")
        index = PageIndex(detail)
        assert index.contains(("FirstName", "LastName"))

    def test_match_position_is_full_stream_index(self):
        detail = Page("d", "<p>x</p><p>John Smith</p>")
        index = PageIndex(detail)
        (position,) = index.occurrences(("John", "Smith"))
        assert detail.tokens()[position].text == "John"

    def test_multiple_occurrences(self):
        detail = Page("d", "Smith one Smith two")
        index = PageIndex(detail)
        assert len(index.occurrences(("Smith",))) == 2

    def test_case_sensitive_by_default(self):
        detail = Page("d", "Robert Johnson")
        index = PageIndex(detail)
        assert not index.contains(("ROBERT", "JOHNSON"))

    def test_casefold_option(self):
        detail = Page("d", "Robert Johnson")
        index = PageIndex(detail, MatchOptions(casefold=True))
        assert index.contains(("ROBERT", "JOHNSON"))

    def test_no_partial_token_match(self):
        detail = Page("d", "Parolee status")
        index = PageIndex(detail)
        assert not index.contains(("Parole",))

    def test_empty_query(self):
        index = PageIndex(Page("d", "anything"))
        assert index.occurrences(()) == []

    def test_find_occurrences_across_pages(self):
        pages = [Page("a", "x John y"), Page("b", "nothing"), Page("c", "John")]
        found = find_occurrences(("John",), pages)
        assert set(found) == {0, 2}


class TestObservationTable:
    def build(self, list_html, detail_htmls, other_list_htmls=()):
        extracts = extract_strings(tokenize_html(list_html))
        details = [Page(f"d{i}", html) for i, html in enumerate(detail_htmls)]
        others = [Page(f"o{i}", html) for i, html in enumerate(other_list_htmls)]
        return ObservationTable.build(extracts, details, other_list_pages=others)

    def test_d_sets_recorded(self):
        table = self.build(
            "<p>Ann</p><p>Bob</p>",
            ["Ann lives here", "Bob lives here"],
        )
        assert [sorted(o.detail_pages) for o in table.observations] == [[0], [1]]

    def test_all_details_filter(self):
        table = self.build(
            "<p>More Info</p><p>Ann</p>",
            ["More Info Ann", "More Info x"],
        )
        assert [o.extract.text for o in table.observations] == ["Ann"]
        assert [e.text for e in table.ignored_all_details] == ["More Info"]

    def test_all_lists_filter(self):
        table = self.build(
            "<p>Search Again</p><p>Ann</p>",
            ["Ann here", "Search Again context"],
            other_list_htmls=["<p>Search Again</p><p>Zed</p>"],
        )
        texts = [o.extract.text for o in table.observations]
        assert "Search Again" not in texts
        assert [e.text for e in table.ignored_all_lists] == ["Search Again"]

    def test_unmatched_kept_separately(self):
        table = self.build("<p>Ann</p><p>Ghost</p>", ["Ann here"])
        assert [e.text for e in table.unmatched] == ["Ghost"]
        assert table.used_count == 1

    def test_seq_renumbered_after_filtering(self):
        table = self.build(
            "<p>More Info</p><p>Ann</p><p>Bob</p>",
            ["More Info Ann", "More Info Bob"],
        )
        assert [o.seq for o in table.observations] == [0, 1]

    def test_candidates_for_record(self, paper_table):
        assert paper_table.candidates_for_record(0) == [0, 1, 2, 3, 4, 7]
        assert paper_table.candidates_for_record(2) == [8, 9, 10]

    def test_position_groups_paper_example(self, paper_table):
        groups = {
            (g.detail_page, g.position): g.members
            for g in paper_table.position_groups(min_size=2)
        }
        # E_1/E_5 share position 730 on r1; E_4/E_8 share 846 on r1 and
        # 578 on r2; E_1/E_5 also share 536 on r2.
        assert groups[(0, 730)] == (0, 4)
        assert groups[(0, 846)] == (3, 7)
        assert groups[(1, 536)] == (0, 4)
        assert groups[(1, 578)] == (3, 7)

    def test_summary_mentions_counts(self, paper_table):
        summary = paper_table.summary()
        assert "11 extracts" in summary
        assert "K=3" in summary

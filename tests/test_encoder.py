"""Tests for the CSP encoding of the segmentation problem."""

from __future__ import annotations

import pytest

from repro.core.exceptions import EmptyProblemError
from repro.csp.constraints import Relation
from repro.csp.encoder import EncoderConfig, encode_segmentation
from repro.extraction.observations import ObservationTable
from tests.conftest import build_observation_table


def constraints_labeled(problem, prefix):
    return [
        c for c in problem.system.constraints if c.label.startswith(prefix)
    ]


class TestVariables:
    def test_variables_only_where_d_permits(self, paper_table):
        problem = encode_segmentation(paper_table)
        # Sum over observations of |D_i|.
        expected = sum(len(o.detail_pages) for o in paper_table.observations)
        assert problem.system.num_vars == expected
        assert (0, 0) in problem.var_of and (0, 1) in problem.var_of
        assert (0, 2) not in problem.var_of  # John Smith never on r3

    def test_empty_table_raises(self):
        table = ObservationTable(extracts=[], observations=[], detail_count=2)
        with pytest.raises(EmptyProblemError):
            encode_segmentation(table)


class TestUniqueness:
    def test_one_equality_per_observation(self, paper_table):
        problem = encode_segmentation(paper_table)
        uniq = constraints_labeled(problem, "uniq")
        assert len(uniq) == len(paper_table.observations)
        assert all(c.relation is Relation.EQ and c.bound == 1 for c in uniq)

    def test_relaxed_form(self, paper_table):
        problem = encode_segmentation(
            paper_table, EncoderConfig(uniqueness_eq=False)
        )
        uniq = constraints_labeled(problem, "uniq")
        assert all(c.relation is Relation.LE for c in uniq)

    def test_paper_singletons(self, paper_table):
        # x_21 = 1 etc.: observations with |D_i| = 1 yield unit
        # equalities (the paper writes them as x_ij = 1 directly).
        problem = encode_segmentation(paper_table)
        uniq = constraints_labeled(problem, "uniq[1]")
        assert len(uniq) == 1
        assert len(uniq[0].terms) == 1


class TestConsecutiveness:
    def test_cross_run_pairs_forbidden(self):
        # Record 0's candidates are seqs {0, 3}: two runs with a
        # non-candidate between them -> mutual exclusion.
        table = build_observation_table(
            [
                ("a", {0: (1,), 1: (9,)}),
                ("b", {1: (2,)}),
                ("c", {1: (3,)}),
                ("d", {0: (4,), 1: (10,)}),
            ],
            detail_count=2,
        )
        problem = encode_segmentation(
            table, EncoderConfig(position_constraints=False)
        )
        consec0 = constraints_labeled(problem, "consec[0]")
        assert len(consec0) == 1
        (pair,) = consec0
        assert pair.relation is Relation.LE and pair.bound == 1
        assert {problem.pair_of[v] for _, v in pair.terms} == {(0, 0), (3, 0)}

    def test_in_run_triples(self):
        # Candidates {0,1,2} contiguous: one triple constraint.
        table = build_observation_table(
            [
                ("a", {0: (1,)}),
                ("b", {0: (2,)}),
                ("c", {0: (3,)}),
            ],
            detail_count=1,
        )
        problem = encode_segmentation(table)
        triples = [
            c
            for c in constraints_labeled(problem, "consec[0]")
            if len(c.terms) == 3
        ]
        assert len(triples) == 1
        coefs = sorted(coef for coef, _ in triples[0].terms)
        assert coefs == [-1, 1, 1]

    def test_correct_solution_satisfies_consecutiveness(self, paper_table):
        problem = encode_segmentation(paper_table)
        from tests.conftest import PAPER_TABLE2

        assignment = [0] * problem.system.num_vars
        for record, seqs in PAPER_TABLE2.items():
            for seq in seqs:
                assignment[problem.var_of[(seq, record)]] = 1
        assert problem.system.is_satisfied(assignment)


class TestPositions:
    def test_groups_of_two_or_more_only(self, paper_table):
        problem = encode_segmentation(paper_table)
        position_constraints = constraints_labeled(problem, "pos")
        assert all(len(c.terms) >= 2 for c in position_constraints)
        # The paper's example: x_11 + x_51 = 1 at (r1, 730).
        labels = {c.label for c in position_constraints}
        assert "pos[0,730]" in labels
        assert "pos[1,578]" in labels

    def test_positions_can_be_disabled(self, paper_table):
        problem = encode_segmentation(
            paper_table, EncoderConfig(position_constraints=False)
        )
        assert not constraints_labeled(problem, "pos")

    def test_relaxed_positions(self, paper_table):
        problem = encode_segmentation(
            paper_table, EncoderConfig(positions_eq=False)
        )
        assert all(
            c.relation is Relation.LE
            for c in constraints_labeled(problem, "pos")
        )


class TestOrdering:
    def test_off_by_default(self, paper_table):
        problem = encode_segmentation(paper_table)
        assert not constraints_labeled(problem, "order")

    def test_ordering_forbids_inversions(self):
        table = build_observation_table(
            [("a", {1: (5,)}), ("b", {0: (6,)})],
            detail_count=2,
        )
        problem = encode_segmentation(
            table, EncoderConfig(ordering_constraints=True)
        )
        order = constraints_labeled(problem, "order")
        assert len(order) == 1
        # a->r1 together with b->r0 is the forbidden inversion.
        assignment = [0] * problem.system.num_vars
        assignment[problem.var_of[(0, 1)]] = 1
        assignment[problem.var_of[(1, 0)]] = 1
        assert not order[0].is_satisfied(assignment)


class TestDecode:
    def test_round_trip(self, paper_table):
        problem = encode_segmentation(paper_table)
        assignment = [0] * problem.system.num_vars
        assignment[problem.var_of[(0, 0)]] = 1
        decoded = problem.decode(assignment)
        assert decoded[0] == 0
        assert decoded[1] is None

    def test_double_assignment_lowest_record_wins(self, paper_table):
        problem = encode_segmentation(paper_table)
        assignment = [0] * problem.system.num_vars
        assignment[problem.var_of[(0, 0)]] = 1
        assignment[problem.var_of[(0, 1)]] = 1
        assert problem.decode(assignment)[0] == 0

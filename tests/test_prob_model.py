"""Tests for the probabilistic model parameters and period utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prob.model import ModelParams, ProbConfig
from repro.prob.period import expected_length, fit_period, period_mode


class TestModelParams:
    def test_uniform_shapes(self):
        params = ModelParams.uniform(k=5)
        assert params.emit.shape == (5, 8)
        assert params.trans.shape == (5, 5)
        assert params.start_from.shape == (5,)
        assert params.period.shape == (6,)

    def test_uniform_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            ModelParams.uniform(k=0)

    def test_period_sums_to_one(self):
        params = ModelParams.uniform(k=4)
        assert params.period[0] == 0
        assert params.period[1:].sum() == pytest.approx(1.0)

    def test_last_column_always_ends(self):
        params = ModelParams.uniform(k=4)
        assert params.start_from[-1] == 1.0

    def test_jitter_breaks_symmetry_deterministically(self):
        first = ModelParams.uniform(k=3, seed=1)
        second = ModelParams.uniform(k=3, seed=1)
        third = ModelParams.uniform(k=3, seed=2)
        assert np.array_equal(first.emit, second.emit)
        assert not np.array_equal(first.emit, third.emit)

    def test_within_record_matrix_is_upper_triangular_stochastic(self):
        params = ModelParams.uniform(k=4)
        matrix = params.within_record_matrix()
        assert np.allclose(np.tril(matrix), 0.0)
        row_sums = matrix.sum(axis=1)
        assert np.allclose(row_sums[:-1], 1.0)
        assert row_sums[-1] == 0.0  # last column has no successor

    def test_hazard_reaches_one(self):
        params = ModelParams.uniform(k=4)
        hazard = params.hazard()
        assert hazard[-1] == 1.0
        assert np.all(hazard[1:] > 0)
        assert np.all(hazard <= 1.0)

    def test_hazard_of_point_mass(self):
        params = ModelParams.uniform(k=4)
        params.period = np.array([0, 0, 0, 1.0, 0])
        hazard = params.hazard()
        assert hazard[3] == pytest.approx(1.0)
        assert hazard[1] == pytest.approx(1e-9)  # clipped floor

    def test_log_emission_by_column(self):
        params = ModelParams.uniform(k=2)
        params.emit = np.array(
            [[0.9] + [0.5] * 7, [0.1] + [0.5] * 7]
        )
        vectors = np.zeros((1, 8))
        vectors[0, 0] = 1.0
        logs = params.log_emission_by_column(vectors)
        assert logs.shape == (1, 2)
        assert logs[0, 0] > logs[0, 1]

    def test_copy_is_deep(self):
        params = ModelParams.uniform(k=3)
        clone = params.copy()
        clone.emit[0, 0] = 0.123
        assert params.emit[0, 0] != 0.123


class TestPeriod:
    def test_fit_normalizes(self):
        period = fit_period(np.array([0, 2.0, 6.0, 2.0]), k=3, smoothing=0.0)
        assert period[1:].sum() == pytest.approx(1.0)
        assert period[2] == pytest.approx(0.6)

    def test_fit_with_smoothing_never_zero(self):
        period = fit_period(np.zeros(5), k=4, smoothing=0.5)
        assert np.all(period[1:] > 0)

    def test_fit_truncates_long_counts(self):
        period = fit_period(np.array([0, 1.0, 1.0, 1.0, 99.0]), k=2, smoothing=0.0)
        assert len(period) == 3

    def test_expected_length(self):
        period = np.array([0, 0.5, 0.5])
        assert expected_length(period) == pytest.approx(1.5)

    def test_period_mode(self):
        period = np.array([0, 0.2, 0.7, 0.1])
        assert period_mode(period) == 2


class TestProbConfig:
    def test_defaults(self):
        config = ProbConfig()
        assert config.use_period
        assert 0 < config.d_epsilon < 1
        assert config.max_record_skip >= 1

"""Tests for multi-process supervision (serve/supervisor.py).

Unit-tests the pure bookkeeping (:class:`CrashBudget`,
:class:`RestartBackoff`, :class:`SupervisorConfig`) with manual time,
then drives a real :class:`Supervisor` over tiny stand-in worker
scripts (spawn fast, no service import) to exercise reaping,
restarts, heartbeat timeouts, the crash budget and the control pipe.
The full-stack path — real serving workers, SIGKILL mid-load,
byte-identical warm answers — lives in ``test_serve_http.py``'s
supervised tests and ``tools/serve_smoke.py --supervised``.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import pytest

from repro.core.exceptions import ConfigError
from repro.serve.supervisor import (
    CrashBudget,
    RestartBackoff,
    Supervisor,
    SupervisorConfig,
    apply_memory_limit,
    supports_reuse_port,
)

pytestmark = pytest.mark.skipif(
    not supports_reuse_port(), reason="needs SO_REUSEPORT"
)

#: Worker that heartbeats forever and echoes control lines to a file.
BEAT_FOREVER = """
import os, sys, time
fd = int(sys.argv[1])
log = sys.argv[2] if len(sys.argv) > 2 else None
import threading
def beat():
    while True:
        os.write(fd, b".")
        time.sleep(0.05)
threading.Thread(target=beat, daemon=True).start()
for line in sys.stdin:
    if log:
        with open(log, "a") as handle:
            handle.write(line)
"""

#: Worker that exits immediately (a crash loop when restarted).
DIE_NOW = "import sys; sys.exit(3)"

#: Worker that stays alive but never heartbeats (a wedged process).
SILENT = "import time\nwhile True: time.sleep(1)"


def make_supervisor(script, config, extra_args=(), out=None):
    def worker_command(spawn):
        return [
            sys.executable,
            "-c",
            script,
            str(spawn.heartbeat_fd),
            *extra_args,
        ]

    return Supervisor(worker_command, config, port=0, out=out)


def run_in_thread(supervisor):
    codes = []
    thread = threading.Thread(
        # Signal handlers only install on the main thread.
        target=lambda: codes.append(supervisor.run(install_signals=False)),
        daemon=True,
    )
    thread.start()
    return thread, codes


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestCrashBudget:
    def test_within_budget(self):
        budget = CrashBudget(budget=2, window_s=60.0)
        budget.record(now=0.0)
        budget.record(now=1.0)
        assert not budget.exhausted(now=1.0)
        assert budget.count(now=1.0) == 2

    def test_one_past_budget_exhausts(self):
        budget = CrashBudget(budget=2, window_s=60.0)
        for moment in (0.0, 1.0, 2.0):
            budget.record(now=moment)
        assert budget.exhausted(now=2.0)

    def test_window_rolls(self):
        budget = CrashBudget(budget=1, window_s=10.0)
        budget.record(now=0.0)
        budget.record(now=5.0)
        assert budget.exhausted(now=5.0)
        # The first crash ages out of the window.
        assert not budget.exhausted(now=11.0)
        assert budget.count(now=11.0) == 1

    def test_zero_budget_tolerates_nothing(self):
        budget = CrashBudget(budget=0, window_s=60.0)
        assert not budget.exhausted(now=0.0)
        budget.record(now=0.0)
        assert budget.exhausted(now=0.0)


class TestRestartBackoff:
    def test_doubles_up_to_max(self):
        backoff = RestartBackoff(base_s=0.1, max_s=1.0, reset_s=30.0)
        delays = [backoff.next_delay(uptime_s=0.0) for _ in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_stable_uptime_resets_streak(self):
        backoff = RestartBackoff(base_s=0.1, max_s=5.0, reset_s=30.0)
        backoff.next_delay(uptime_s=0.0)
        backoff.next_delay(uptime_s=0.0)
        assert backoff.next_delay(uptime_s=0.0) == pytest.approx(0.4)
        # A worker that ran half a minute is forgiven its history.
        assert backoff.next_delay(uptime_s=45.0) == pytest.approx(0.1)


class TestSupervisorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"procs": 0},
            {"crash_budget": -1},
            {"crash_window_s": 0.0},
            {"heartbeat_timeout_s": 0.1, "heartbeat_interval_s": 0.25},
            {"drain_grace_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisorConfig(**kwargs)


class TestSupervisorLoop:
    CONFIG = SupervisorConfig(
        procs=2,
        crash_budget=8,
        crash_window_s=60.0,
        backoff_base_s=0.05,
        backoff_max_s=0.2,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.0,
        drain_grace_s=5.0,
    )

    def test_bind_resolves_ephemeral_port(self):
        supervisor = make_supervisor(BEAT_FOREVER, self.CONFIG)
        port = supervisor.bind()
        try:
            assert port > 0
            assert supervisor.address.endswith(f":{port}")
        finally:
            supervisor._close()

    def test_spawns_and_drains_cleanly(self):
        supervisor = make_supervisor(BEAT_FOREVER, self.CONFIG)
        thread, codes = run_in_thread(supervisor)
        assert wait_until(lambda: supervisor.live_workers() == 2)
        supervisor.stop()
        thread.join(timeout=15.0)
        assert codes == [0]
        assert supervisor.live_workers() == 0

    def test_dead_worker_restarts(self):
        supervisor = make_supervisor(BEAT_FOREVER, self.CONFIG)
        thread, codes = run_in_thread(supervisor)
        assert wait_until(lambda: supervisor.live_workers() == 2)
        victim = supervisor._slots[0].process
        victim.kill()
        assert wait_until(
            lambda: supervisor._slots[0].process is not None
            and supervisor._slots[0].process.pid != victim.pid
        )
        assert supervisor._slots[0].generation == 1
        restarts = supervisor.metrics.counter("serve.supervisor.restarts")
        assert restarts.value >= 1
        supervisor.stop()
        thread.join(timeout=15.0)
        assert codes == [0]

    def test_crash_loop_exhausts_budget_and_exits_nonzero(self):
        config = SupervisorConfig(
            procs=1,
            crash_budget=2,
            crash_window_s=60.0,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=1.0,
            degraded_grace_s=0.05,
            drain_grace_s=5.0,
        )
        supervisor = make_supervisor(DIE_NOW, config)
        thread, codes = run_in_thread(supervisor)
        thread.join(timeout=20.0)
        assert codes == [1]
        exhausted = supervisor.metrics.counter(
            "serve.supervisor.crash_budget_exhausted"
        )
        assert exhausted.value == 1
        # budget crashes tolerated + the one that broke it.
        assert supervisor.metrics.counter("serve.supervisor.reaps").value == 3

    def test_heartbeat_silence_is_a_crash(self):
        config = SupervisorConfig(
            procs=1,
            crash_budget=0,
            crash_window_s=60.0,
            backoff_base_s=0.01,
            backoff_max_s=0.05,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.5,
            degraded_grace_s=0.05,
            drain_grace_s=5.0,
        )
        supervisor = make_supervisor(SILENT, config)
        thread, codes = run_in_thread(supervisor)
        thread.join(timeout=20.0)
        # budget=0: the first heartbeat kill exhausts it right away.
        assert codes == [1]
        timeouts = supervisor.metrics.counter(
            "serve.supervisor.heartbeat_timeouts"
        )
        assert timeouts.value == 1

    def test_control_pipe_carries_metrics_and_degraded(self, tmp_path):
        log = tmp_path / "control.jsonl"
        config = SupervisorConfig(
            procs=1,
            crash_budget=0,
            crash_window_s=60.0,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=5.0,
            broadcast_interval_s=0.1,
            degraded_grace_s=0.2,
            drain_grace_s=5.0,
        )
        supervisor = make_supervisor(
            BEAT_FOREVER, config, extra_args=(str(log),)
        )
        thread, _ = run_in_thread(supervisor)
        assert wait_until(lambda: supervisor.live_workers() == 1)
        assert wait_until(lambda: log.exists() and log.read_text().strip())
        supervisor.stop()
        thread.join(timeout=15.0)
        messages = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if line.strip()
        ]
        snapshots = [
            m for m in messages if m["type"] == "supervisor_metrics"
        ]
        assert snapshots
        assert (
            snapshots[0]["metrics"]["counters"]["serve.supervisor.spawns"]
            == 1
        )

    def test_degraded_broadcast_before_budget_exit(self, tmp_path):
        log = tmp_path / "control.jsonl"
        config = SupervisorConfig(
            procs=2,
            crash_budget=0,
            crash_window_s=60.0,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=5.0,
            degraded_grace_s=0.2,
            drain_grace_s=5.0,
        )
        supervisor = make_supervisor(
            BEAT_FOREVER, config, extra_args=(str(log),)
        )
        thread, codes = run_in_thread(supervisor)
        assert wait_until(lambda: supervisor.live_workers() == 2)
        supervisor._slots[0].process.kill()  # budget=0: one crash kills it
        thread.join(timeout=20.0)
        assert codes == [1]
        messages = [
            json.loads(line)
            for line in log.read_text().splitlines()
            if line.strip()
        ]
        # The surviving worker was told the fleet is degraded before
        # the drain took it down.
        assert {"type": "state", "status": "degraded"} in messages


class TestMemoryLimit:
    def test_none_is_a_no_op(self):
        assert apply_memory_limit(None) is False
        assert apply_memory_limit(0) is False

    def test_limit_applies_in_subprocess(self):
        import subprocess

        script = (
            "from repro.serve.supervisor import apply_memory_limit\n"
            "assert apply_memory_limit(256)\n"
            "try:\n"
            "    block = bytearray(1024 * 1024 * 1024)\n"
            "except MemoryError:\n"
            "    print('capped')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "capped" in result.stdout

"""Tests for the end-to-end CSP segmenter and relaxation ladder."""

from __future__ import annotations

import pytest

from repro.core.exceptions import EmptyProblemError
from repro.csp.constraints import Relation
from repro.csp.relaxation import RelaxationLevel, encode_at_level
from repro.csp.segmenter import CspConfig, CspSegmenter
from repro.csp.wsat import WsatConfig
from repro.extraction.observations import ObservationTable
from tests.conftest import PAPER_TABLE2, build_observation_table


class TestRelaxationLevels:
    def test_strict_forms(self, paper_table):
        problem = encode_at_level(paper_table, RelaxationLevel.STRICT)
        uniq = [c for c in problem.system.constraints if c.label.startswith("uniq")]
        pos = [c for c in problem.system.constraints if c.label.startswith("pos")]
        assert all(c.relation is Relation.EQ for c in uniq)
        assert all(c.relation is Relation.EQ for c in pos)

    def test_relaxed_positions(self, paper_table):
        problem = encode_at_level(paper_table, RelaxationLevel.RELAXED_POSITIONS)
        uniq = [c for c in problem.system.constraints if c.label.startswith("uniq")]
        pos = [c for c in problem.system.constraints if c.label.startswith("pos")]
        assert all(c.relation is Relation.EQ for c in uniq)
        assert all(c.relation is Relation.LE for c in pos)

    def test_fully_relaxed_has_soft_assign(self, paper_table):
        problem = encode_at_level(paper_table, RelaxationLevel.RELAXED)
        soft = [c for c in problem.system.constraints if not c.hard]
        assert len(soft) == len(paper_table.observations)
        assert all(c.relation is Relation.GE for c in soft)

    def test_soft_assign_can_be_disabled(self, paper_table):
        problem = encode_at_level(
            paper_table, RelaxationLevel.RELAXED, soft_assign=False
        )
        assert all(c.hard for c in problem.system.constraints)

    def test_is_relaxed_property(self):
        assert not RelaxationLevel.STRICT.is_relaxed
        assert RelaxationLevel.RELAXED_POSITIONS.is_relaxed
        assert RelaxationLevel.RELAXED.is_relaxed


class TestSegmenter:
    def test_paper_example_solved_strictly(self, paper_table):
        segmentation = CspSegmenter().segment(paper_table)
        assert segmentation.meta["level"] is RelaxationLevel.STRICT
        assert segmentation.meta["solution_found"]
        assert not segmentation.is_partial
        got = {
            record.record_id: sorted(record.assigned_seqs)
            for record in segmentation.records
        }
        assert got == PAPER_TABLE2

    def test_empty_table_raises(self):
        table = ObservationTable(extracts=[], observations=[], detail_count=1)
        with pytest.raises(EmptyProblemError):
            CspSegmenter().segment(table)

    def test_inconsistent_data_climbs_ladder(self):
        # Three extracts all pinned to record 0 at the same detail
        # position: strict and relaxed-positions rungs are
        # unsatisfiable (paper's Michigan scenario).
        table = build_observation_table(
            [
                ("Parole", {0: (99,)}),
                ("anchor-a", {0: (10,)}),
                ("Parole", {0: (99,)}),
                ("anchor-b", {1: (20,)}),
                ("Parole", {0: (99,)}),
            ],
            detail_count=2,
        )
        segmentation = CspSegmenter().segment(table)
        assert segmentation.meta["relaxed"]
        assert segmentation.meta["level"] is RelaxationLevel.RELAXED
        assert segmentation.is_partial
        # Exactly one of the three "Parole" extracts is kept.
        kept = sum(
            1
            for record in segmentation.records
            for observation in record.observations
            if observation.extract.text == "Parole"
        )
        assert kept == 1

    def test_attempt_diagnostics_recorded(self):
        table = build_observation_table(
            [
                ("x", {0: (5,)}),
                ("x", {0: (5,)}),
            ],
            detail_count=1,
        )
        segmentation = CspSegmenter().segment(table)
        attempts = segmentation.meta["attempts"]
        assert attempts[0]["level"] == "STRICT"
        assert attempts[0]["wsat_satisfied"] is False
        # The exact solver proved strict unsatisfiability.
        assert attempts[0].get("exact") == "unsatisfiable"

    def test_soft_assign_off_still_returns_solution(self, paper_table):
        config = CspConfig(soft_assign=False)
        segmentation = CspSegmenter(config).segment(paper_table)
        assert segmentation.meta["solution_found"]

    def test_deterministic(self, paper_table):
        first = CspSegmenter().segment(paper_table)
        second = CspSegmenter().segment(paper_table)
        assert [sorted(r.assigned_seqs) for r in first.records] == [
            sorted(r.assigned_seqs) for r in second.records
        ]

    def test_constraint_stats_exposed(self, paper_table):
        segmentation = CspSegmenter().segment(paper_table)
        stats = segmentation.meta["constraint_stats"]
        assert stats["uniq"] == len(paper_table.observations)
        assert stats["variables"] == 15

    def test_small_budget_still_finishes(self, paper_table):
        config = CspConfig(wsat=WsatConfig(max_flips=50, max_restarts=1))
        segmentation = CspSegmenter(config).segment(paper_table)
        assert segmentation.records  # exact solver backstops tiny budgets

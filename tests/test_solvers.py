"""Tests for the WSAT(OIP)-style and exact solvers, including
cross-checking property tests on random planted instances."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SolverBudgetExceededError
from repro.csp.constraints import ConstraintSystem, Relation
from repro.csp.exact import ExactConfig, ExactSolver
from repro.csp.wsat import WsatConfig, WsatSolver


def exactly_one_system(groups, num_vars):
    system = ConstraintSystem(num_vars=num_vars)
    for group in groups:
        system.add([(1, v) for v in group], Relation.EQ, 1)
    return system


def brute_force_satisfiable(system):
    for bits in itertools.product((0, 1), repeat=system.num_vars):
        if system.is_satisfied(list(bits)):
            return True
    return False


@st.composite
def random_systems(draw):
    """Small random pseudo-boolean systems (sat and unsat mixed)."""
    num_vars = draw(st.integers(2, 6))
    count = draw(st.integers(1, 6))
    system = ConstraintSystem(num_vars=num_vars)
    for _ in range(count):
        size = draw(st.integers(1, min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(0, num_vars - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        coefs = draw(
            st.lists(st.sampled_from([1, 1, 1, -1]), min_size=size, max_size=size)
        )
        relation = draw(st.sampled_from(list(Relation)))
        bound = draw(st.integers(-1, 2))
        system.add(list(zip(coefs, variables)), relation, bound)
    return system


class TestWsat:
    def test_solves_exactly_one(self):
        system = exactly_one_system([[0, 1, 2], [2, 3], [3, 4]], 5)
        result = WsatSolver(system).solve()
        assert result.satisfied
        assert system.is_satisfied(result.assignment)

    def test_reports_unsat_as_nonzero_violation(self):
        system = ConstraintSystem(num_vars=1)
        system.add([(1, 0)], Relation.EQ, 1)
        system.add([(1, 0)], Relation.EQ, 0)
        result = WsatSolver(system, WsatConfig(max_flips=500, max_restarts=2)).solve()
        assert not result.satisfied
        assert result.best_violation >= 1

    def test_deterministic_given_seed(self):
        system = exactly_one_system([[0, 1], [1, 2], [2, 3]], 4)
        first = WsatSolver(system, WsatConfig(seed=7)).solve()
        second = WsatSolver(system, WsatConfig(seed=7)).solve()
        assert first.assignment == second.assignment

    def test_initial_assignment_used(self):
        system = exactly_one_system([[0, 1]], 2)
        result = WsatSolver(system).solve(initial=[1, 0])
        assert result.satisfied
        assert result.flips == 0

    def test_soft_constraints_optimized(self):
        # Hard: at most one of {0,1}. Soft: both should be 1.
        # Optimum: exactly one set (soft violation 1, not 2).
        system = ConstraintSystem(num_vars=2)
        system.add([(1, 0), (1, 1)], Relation.LE, 1)
        system.add([(1, 0)], Relation.GE, 1, hard=False)
        system.add([(1, 1)], Relation.GE, 1, hard=False)
        result = WsatSolver(system).solve()
        assert result.satisfied
        assert sum(result.assignment) == 1
        assert result.best_soft_violation == 1

    def test_hard_beats_soft_lexicographically(self):
        # Satisfying the soft constraint would violate the hard one.
        system = ConstraintSystem(num_vars=1)
        system.add([(1, 0)], Relation.EQ, 0, hard=True)
        system.add([(1, 0)], Relation.GE, 1, hard=False, weight=100.0)
        result = WsatSolver(system).solve()
        assert result.satisfied
        assert result.assignment == [0]

    @settings(deadline=None, max_examples=40)
    @given(random_systems())
    def test_wsat_never_claims_false_sat(self, system):
        result = WsatSolver(
            system, WsatConfig(max_flips=2000, max_restarts=2)
        ).solve()
        if result.satisfied:
            assert system.is_satisfied(result.assignment)


class TestExact:
    def test_sat_instance(self):
        system = exactly_one_system([[0, 1, 2], [2, 3]], 4)
        result = ExactSolver(system).solve()
        assert result.satisfiable
        assert system.is_satisfied(result.assignment)

    def test_unsat_instance(self):
        system = ConstraintSystem(num_vars=2)
        system.add([(1, 0), (1, 1)], Relation.LE, 1)
        system.add([(1, 0)], Relation.GE, 1)
        system.add([(1, 1)], Relation.GE, 1)
        result = ExactSolver(system).solve()
        assert not result.satisfiable
        assert result.assignment is None

    def test_root_propagation_conflict(self):
        system = ConstraintSystem(num_vars=1)
        system.add([(1, 0)], Relation.EQ, 1)
        system.add([(1, 0)], Relation.EQ, 0)
        result = ExactSolver(system).solve()
        assert not result.satisfiable

    def test_soft_constraints_ignored(self):
        system = ConstraintSystem(num_vars=1)
        system.add([(1, 0)], Relation.EQ, 0, hard=True)
        system.add([(1, 0)], Relation.EQ, 1, hard=False)
        result = ExactSolver(system).solve()
        assert result.satisfiable
        assert result.assignment == [0]

    def test_budget_exceeded_raises(self):
        # A dense unconstrained-but-large search with a tiny budget.
        system = ConstraintSystem(num_vars=30)
        for v in range(0, 28, 2):
            system.add([(1, v), (1, v + 1), (-1, (v + 2) % 30)], Relation.LE, 1)
        with pytest.raises(SolverBudgetExceededError):
            ExactSolver(system, ExactConfig(node_budget=3)).solve()

    def test_free_variables_get_values(self):
        system = ConstraintSystem(num_vars=3)
        system.add([(1, 0)], Relation.EQ, 1)
        result = ExactSolver(system).solve()
        assert result.satisfiable
        assert all(value in (0, 1) for value in result.assignment)

    @settings(deadline=None, max_examples=60)
    @given(random_systems())
    def test_exact_agrees_with_brute_force(self, system):
        result = ExactSolver(system, ExactConfig(node_budget=50_000)).solve()
        assert result.satisfiable == brute_force_satisfiable(system)
        if result.satisfiable:
            assert system.is_satisfied(result.assignment)


class TestCrossCheck:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_planted_exactly_one_instances(self, seed):
        """Both solvers solve partitioned exactly-one instances."""
        rng = random.Random(seed)
        num_vars = rng.randint(4, 14)
        variables = list(range(num_vars))
        rng.shuffle(variables)
        groups = []
        while variables:
            size = min(len(variables), rng.randint(1, 4))
            groups.append([variables.pop() for _ in range(size)])
        system = exactly_one_system(groups, num_vars)

        wsat = WsatSolver(system, WsatConfig(seed=seed)).solve()
        exact = ExactSolver(system).solve()
        assert exact.satisfiable
        assert wsat.satisfied
        assert system.is_satisfied(wsat.assignment)

    @settings(deadline=None, max_examples=30)
    @given(random_systems())
    def test_wsat_sat_implies_exact_sat(self, system):
        wsat = WsatSolver(
            system, WsatConfig(max_flips=3000, max_restarts=2)
        ).solve()
        if wsat.satisfied:
            exact = ExactSolver(system, ExactConfig(node_budget=50_000)).solve()
            assert exact.satisfiable

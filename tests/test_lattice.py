"""Structural tests for the (record, column, length) lattice."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prob.lattice import (
    Lattice,
    START,
    WITHIN,
    derive_column_count,
    observed_type_vectors,
)
from repro.prob.model import ModelParams, ProbConfig
from tests.conftest import PAPER_TABLE1, build_observation_table


@pytest.fixture
def table():
    return build_observation_table(PAPER_TABLE1, detail_count=3)


def build(table, use_period=True, **kwargs):
    config = ProbConfig(use_period=use_period, **kwargs)
    k = derive_column_count(table, config)
    return Lattice.build(table, config, k), config


class TestStructure:
    def test_state_count_no_period(self, table):
        lattice, config = build(table, use_period=False)
        assert lattice.n_states == 3 * lattice.k

    def test_state_count_with_period(self, table):
        lattice, _ = build(table, use_period=True)
        k = lattice.k
        assert lattice.n_states == 3 * k * (k + 1) // 2

    def test_within_edges_increase_column_same_record(self, table):
        lattice, _ = build(table)
        within = lattice.edge_kind == WITHIN
        src, dst = lattice.edge_src[within], lattice.edge_dst[within]
        assert np.all(lattice.state_r[src] == lattice.state_r[dst])
        assert np.all(lattice.state_c[src] < lattice.state_c[dst])
        assert np.all(lattice.state_p[dst] == lattice.state_p[src] + 1)

    def test_start_edges_enter_column_zero(self, table):
        lattice, _ = build(table)
        start = lattice.edge_kind == START
        dst = lattice.edge_dst[start]
        assert np.all(lattice.state_c[dst] == 0)
        assert np.all(lattice.state_p[dst] == 1)
        src = lattice.edge_src[start]
        assert np.all(lattice.state_r[dst] > lattice.state_r[src])

    def test_record_skip_capped(self, table):
        lattice, config = build(table, max_record_skip=0)
        start = lattice.edge_kind == START
        jumps = (
            lattice.state_r[lattice.edge_dst[start]]
            - lattice.state_r[lattice.edge_src[start]]
        )
        assert np.all(jumps == 1)

    def test_init_only_column_zero(self, table):
        lattice, _ = build(table)
        positive = lattice.init_w > 0
        assert np.all(lattice.state_c[positive] == 0)
        assert lattice.init_w.sum() == pytest.approx(1.0)

    def test_d_compat_mask(self, table):
        lattice, config = build(table)
        # Observation 1 ("221 Washington") only on record 0.
        row = lattice.d_compat[1]
        ok = lattice.state_r == 0
        assert np.all(row[ok] == 1.0)
        assert np.all(row[~ok] == config.d_epsilon)

    def test_edges_sorted_by_destination(self, table):
        lattice, _ = build(table)
        assert np.all(np.diff(lattice.edge_dst) >= 0)


class TestWeights:
    def test_edge_weights_nonnegative_and_bounded(self, table):
        lattice, config = build(table)
        params = ModelParams.uniform(lattice.k)
        weights = lattice.edge_weights(params)
        assert np.all(weights >= 0)
        assert np.all(weights <= 1.0 + 1e-12)

    def test_outgoing_mass_at_most_one_modulo_skips(self, table):
        # Continue-vs-end is a proper choice; skip penalties add a
        # small documented excess only.
        lattice, config = build(table)
        params = ModelParams.uniform(lattice.k)
        weights = lattice.edge_weights(params)
        totals = np.zeros(lattice.n_states)
        np.add.at(totals, lattice.edge_src, weights)
        excess = sum(config.skip_penalty**d for d in range(1, 1 + config.max_record_skip))
        assert np.all(totals <= 1.0 + excess + 1e-9)

    def test_emissions_shape_and_positive(self, table):
        lattice, _ = build(table)
        params = ModelParams.uniform(lattice.k)
        emissions = lattice.emissions(params)
        assert emissions.shape == (len(PAPER_TABLE1), lattice.n_states)
        assert np.all(emissions > 0)


class TestHelpers:
    def test_derive_column_count_paper_bound(self, table):
        # Largest candidate set: r1 has 6 candidates.
        assert derive_column_count(table, ProbConfig()) == 6

    def test_derive_column_count_capped(self, table):
        assert derive_column_count(table, ProbConfig(max_columns=4)) == 4

    def test_observed_type_vectors_union(self, table):
        vectors = observed_type_vectors(table)
        assert vectors.shape == (len(PAPER_TABLE1), 8)
        # "(740) 335-5555": ALNUM + NUMERIC only.
        assert vectors[3].tolist() == [0, 0, 1, 1, 0, 0, 0, 0]
        # "Findlay, OH": capitalized + allcaps union across tokens.
        assert vectors[9][5] == 1 and vectors[9][7] == 1

"""Tests for the serve-side chaos harness (serve/chaos.py)."""

from __future__ import annotations

import errno
import json

import pytest

from repro.core.exceptions import ConfigError
from repro.core.pipeline import SegmentationPipeline
from repro.obs import MetricsRegistry, Observability
from repro.runner.cache import StageCache
from repro.serve import WrapperRegistry
from repro.serve.chaos import ChaosPlan, ChaosStageCache, load_chaos_plan
from repro.sitegen.corpus import build_site
from repro.wrapper import induce_wrapper


@pytest.fixture(scope="module")
def trained_wrapper():
    site = build_site("ohio")
    run = SegmentationPipeline("prob").segment_site(
        site.list_pages,
        [site.detail_pages(index) for index in range(len(site.list_pages))],
    )
    sample = next(page for page in run.pages if page.segmentation.records)
    return induce_wrapper(sample, run.template_verdict)


class TestChaosPlan:
    def test_equal_plans_make_identical_schedules(self):
        a = ChaosPlan(seed=7, kill_rate=0.1, hang_rate=0.05)
        b = ChaosPlan(seed=7, kill_rate=0.1, hang_rate=0.05)
        assert a.schedule(0, 0, 500) == b.schedule(0, 0, 500)
        assert a.schedule(1, 2, 500) == b.schedule(1, 2, 500)

    def test_different_seeds_differ(self):
        a = ChaosPlan(seed=1, kill_rate=0.2)
        b = ChaosPlan(seed=2, kill_rate=0.2)
        assert a.schedule(0, 0, 500) != b.schedule(0, 0, 500)

    def test_generation_decorrelates_restarts(self):
        # A restarted worker must not deterministically re-crash at
        # the same request index — that would spiral the crash budget.
        plan = ChaosPlan(seed=3, kill_rate=0.3)
        assert plan.schedule(0, 0, 200) != plan.schedule(0, 1, 200)

    def test_rates_roughly_hold(self):
        plan = ChaosPlan(seed=11, kill_rate=0.25)
        kills = len(plan.schedule(0, 0, 2000))
        assert 0.18 <= kills / 2000 <= 0.32

    def test_kill_and_hang_share_one_draw(self):
        plan = ChaosPlan(seed=5, kill_rate=0.3, hang_rate=0.3)
        faults = [fault for _, fault in plan.schedule(0, 0, 1000)]
        assert set(faults) == {"kill", "hang"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_rate": -0.1},
            {"hang_rate": 1.5},
            {"kill_rate": 0.6, "hang_rate": 0.6},
            {"cache_corrupt_rate": 0.7, "cache_slow_rate": 0.7},
            {"hang_s": -1.0},
            {"cache_slow_s": -0.5},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ChaosPlan(**kwargs)

    def test_json_round_trip(self, tmp_path):
        plan = ChaosPlan(seed=9, kill_rate=0.02, disk_full_rate=0.5)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.as_dict()))
        assert load_chaos_plan(path) == plan

    def test_load_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigError):
            load_chaos_plan(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            load_chaos_plan(bad)
        wrong_shape = tmp_path / "list.json"
        wrong_shape.write_text("[1, 2]")
        with pytest.raises(ConfigError):
            load_chaos_plan(wrong_shape)
        unknown = tmp_path / "unknown.json"
        unknown.write_text('{"seed": 1, "typo_rate": 0.5}')
        with pytest.raises(ConfigError):
            load_chaos_plan(unknown)


class TestChaosStageCache:
    def test_corrupt_read_is_a_miss(self, tmp_path):
        inner = StageCache(tmp_path)
        inner.store("stage", "k" * 64, {"value": 1})
        metrics = MetricsRegistry()
        chaotic = ChaosStageCache(
            inner, ChaosPlan(seed=0, cache_corrupt_rate=1.0), metrics=metrics
        )
        found, value = chaotic.load("stage", "k" * 64)
        assert not found and value is None
        assert metrics.counter("serve.chaos.cache_corrupt").value == 1
        # The entry itself is intact; only the read was poisoned.
        assert inner.load("stage", "k" * 64) == (True, {"value": 1})

    def test_disk_full_write_raises_enospc(self, tmp_path):
        metrics = MetricsRegistry()
        chaotic = ChaosStageCache(
            StageCache(tmp_path),
            ChaosPlan(seed=0, disk_full_rate=1.0),
            metrics=metrics,
        )
        with pytest.raises(OSError) as excinfo:
            chaotic.store("stage", "k" * 64, {"value": 1})
        assert excinfo.value.errno == errno.ENOSPC
        assert metrics.counter("serve.chaos.disk_full").value == 1

    def test_clean_plan_passes_through(self, tmp_path):
        chaotic = ChaosStageCache(StageCache(tmp_path), ChaosPlan())
        chaotic.store("stage", "a" * 64, [1, 2])
        assert chaotic.load("stage", "a" * 64) == (True, [1, 2])

    def test_registry_absorbs_injected_disk_full(
        self, tmp_path, trained_wrapper
    ):
        # The wrapper registry must keep serving from memory when its
        # disk tier reports a full disk — only crash-survivability of
        # the entry is lost, never the request.
        obs = Observability()
        registry = WrapperRegistry(
            cache=ChaosStageCache(
                StageCache(tmp_path),
                ChaosPlan(seed=0, disk_full_rate=1.0),
                metrics=obs.metrics,
            ),
            obs=obs,
        )
        registry.put("ohio", "prob", trained_wrapper)
        assert registry.get("ohio", "prob") is trained_wrapper
        assert obs.counter("serve.registry.store_errors").value == 1
        assert obs.counter("serve.chaos.disk_full").value == 1

"""Tests for the parameterized sweep sites."""

from __future__ import annotations

import pytest

from repro.core.evaluation import PageScore, score_page
from repro.core.pipeline import SegmentationPipeline
from repro.sitegen.sweeps import noisy_site, sized_site


def f_measure(site, method):
    run = SegmentationPipeline(method).segment_generated_site(site)
    total = PageScore()
    for page_run, truth in zip(run.pages, site.truth):
        total = total + score_page(page_run.segmentation, truth)
    return total.f_measure


class TestNoisySite:
    def test_zero_plants_is_clean(self):
        site = noisy_site(0)
        assert f_measure(site, "csp") == 1.0

    def test_plants_rendered_on_far_pages(self):
        site = noisy_site(2)
        quirks = site.spec.quirks
        assert len(quirks.planted_mentions) == 4  # 2 per page
        for mention in quirks.planted_mentions:
            assert mention.source_record not in mention.target_records

    def test_sources_are_recased_rows(self):
        site = noisy_site(2)
        for mention in site.spec.quirks.planted_mentions:
            assert mention.source_record % 2 == 0  # stride-2 allcaps rows

    def test_plants_degrade_csp(self):
        clean = f_measure(noisy_site(0), "csp")
        dirty = f_measure(noisy_site(3), "csp")
        assert dirty < clean

    def test_deterministic(self):
        assert (
            noisy_site(2).list_pages[0].html
            == noisy_site(2).list_pages[0].html
        )


class TestSizedSite:
    @pytest.mark.parametrize("records", [5, 25])
    def test_record_counts(self, records):
        site = sized_site(records)
        assert site.spec.records_per_page == (records, records)
        assert len(site.truth[0].rows) == records

    def test_large_site_still_clean(self):
        site = sized_site(40)
        assert f_measure(site, "csp") == 1.0

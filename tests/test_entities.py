"""Unit + property tests for HTML entity decoding."""

from __future__ import annotations

import html as stdlib_html

import pytest
from hypothesis import given, strategies as st

from repro.webdoc.entities import NAMED_ENTITIES, decode_entities, encode_entities


class TestNamedEntities:
    def test_big_five(self):
        assert decode_entities("&amp;&lt;&gt;&quot;&apos;") == "&<>\"'"

    def test_in_context(self):
        assert decode_entities("Barnes &amp; Noble") == "Barnes & Noble"

    def test_nbsp_becomes_space(self):
        assert decode_entities("a&nbsp;b") == "a b"

    def test_currency_symbols(self):
        assert decode_entities("&pound;5 &euro;3 &cent;9") == "£5 €3 ¢9"

    def test_unknown_name_left_verbatim(self):
        assert decode_entities("&bogusname;") == "&bogusname;"

    def test_case_sensitive_names(self):
        # &Dagger; and &dagger; are distinct.
        assert decode_entities("&dagger;&Dagger;") == "†‡"

    def test_semicolonless_legacy_names(self):
        assert decode_entities("Barnes &amp Noble") == "Barnes & Noble"
        assert decode_entities("&copy 2004") == "© 2004"

    def test_semicolonless_nonlegacy_left_alone(self):
        assert decode_entities("&euro 3") == "&euro 3"

    #: Names the decoder deliberately normalizes to ASCII (the paper:
    #: "HTML escape sequences are converted to ASCII text"), diverging
    #: from the stdlib's Unicode-faithful decoding.
    ASCII_NORMALIZED = {"nbsp", "ensp", "emsp", "thinsp", "shy"}

    @pytest.mark.parametrize("name", sorted(NAMED_ENTITIES))
    def test_agrees_with_stdlib(self, name):
        ours = decode_entities(f"&{name};")
        stdlib = stdlib_html.unescape(f"&{name};")
        if name in self.ASCII_NORMALIZED:
            assert ours in (" ", "")
        else:
            assert ours == stdlib


class TestNumericEntities:
    def test_decimal(self):
        assert decode_entities("&#65;&#66;") == "AB"

    def test_hex_lower_and_upper(self):
        assert decode_entities("&#x41;&#X42;") == "AB"

    def test_unicode_beyond_ascii(self):
        assert decode_entities("&#233;") == "é"

    def test_surrogate_left_verbatim(self):
        assert decode_entities("&#xD800;") == "&#xD800;"

    def test_out_of_range_left_verbatim(self):
        assert decode_entities("&#1114112;") == "&#1114112;"

    def test_missing_semicolon_not_numeric(self):
        assert decode_entities("&#65") == "&#65"


class TestEncode:
    def test_escapes_specials(self):
        assert encode_entities('a & b < c > d " e') == (
            "a &amp; b &lt; c &gt; d &quot; e"
        )

    def test_plain_text_unchanged(self):
        assert encode_entities("John Smith 740-335-5555") == (
            "John Smith 740-335-5555"
        )


class TestProperties:
    @given(st.text(alphabet=st.characters(blacklist_characters="&<>\""), max_size=80))
    def test_decode_without_ampersand_is_identity(self, text):
        assert decode_entities(text) == text

    @given(st.text(max_size=80))
    def test_encode_then_decode_round_trips(self, text):
        assert decode_entities(encode_entities(text)) == text

    @given(st.text(max_size=80))
    def test_encoded_text_is_markup_safe(self, text):
        encoded = encode_entities(text)
        assert "<" not in encoded
        assert ">" not in encoded

"""Unit + property tests for the page tokenizer."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.tokens.tokenizer import (
    DEFAULT_ALLOWED_PUNCT,
    is_separator,
    tokenize_html,
    tokenize_text,
)
from repro.webdoc.page import Page


def token_texts(html):
    return [token.text for token in tokenize_html(html)]


class TestHtmlTokenization:
    def test_tags_become_canonical_tokens(self):
        assert token_texts('<a href="x.html">hi</a>') == ["<a>", "hi", "</a>"]

    def test_entities_decoded_before_splitting(self):
        assert token_texts("Barnes &amp; Noble") == ["Barnes", "&", "Noble"]

    def test_paper_example_tokens(self):
        assert token_texts("<b>John Smith</b> (740) 335-5555") == [
            "<b>", "John", "Smith", "</b>", "(740)", "335-5555",
        ]

    def test_comments_and_script_bodies_invisible(self):
        # The script *tags* are markup tokens; the body is not.
        html = "a<!-- x --><script>var y;</script>b"
        assert token_texts(html) == ["a", "<script>", "</script>", "b"]

    def test_indices_sequential(self):
        tokens = tokenize_html("<p>one two</p><p>three</p>")
        assert [token.index for token in tokens] == list(range(len(tokens)))

    def test_char_offsets_point_at_source(self):
        html = "<td>John Smith</td>"
        tokens = tokenize_html(html)
        john = next(t for t in tokens if t.text == "John")
        assert html[john.start : john.start + 4] == "John"


class TestPunctuationSplitting:
    def test_allowed_punct_stays_attached(self):
        assert [t.text for t in tokenize_text("Findlay, OH")] == ["Findlay,", "OH"]
        assert [t.text for t in tokenize_text("(740) 335-5555")] == [
            "(740)", "335-5555",
        ]

    def test_disallowed_punct_split_off(self):
        assert [t.text for t in tokenize_text("Price: $12.95")] == [
            "Price", ":", "$", "12.95",
        ]

    def test_colon_and_semicolon_each_own_token(self):
        assert [t.text for t in tokenize_text("a:b;c")] == ["a", ":", "b", ";", "c"]

    def test_ws_before_tracks_gluing(self):
        tokens = tokenize_text("Price: tag")
        flags = [(t.text, t.ws_before) for t in tokens]
        assert flags == [("Price", True), (":", False), ("tag", True)]

    def test_custom_allowed_punct(self):
        allowed = frozenset(".,()-:'")
        assert [t.text for t in tokenize_text("O'Brien 5:30", allowed)] == [
            "O'Brien", "5:30",
        ]


class TestSeparators:
    def test_html_tags_are_separators(self):
        tokens = tokenize_html("<br>")
        assert is_separator(tokens[0])

    def test_disallowed_punct_is_separator(self):
        tokens = tokenize_text("a | b")
        bar = next(t for t in tokens if t.text == "|")
        assert is_separator(bar)

    def test_allowed_punct_run_is_not_separator(self):
        tokens = tokenize_text("a -- b")
        dashes = next(t for t in tokens if t.text == "--")
        assert not is_separator(dashes)

    def test_words_are_not_separators(self):
        for token in tokenize_text("John Smith, Findlay"):
            assert not is_separator(token)


class TestPageCache:
    def test_tokens_cached(self):
        page = Page(url="x", html="<b>hi</b>")
        assert page.tokens() is page.tokens()

    def test_invalidate_cache(self):
        page = Page(url="x", html="<b>hi</b>")
        first = page.tokens()
        page.html = "<b>bye</b>"
        page.invalidate_cache()
        assert [t.text for t in page.tokens()] == ["<b>", "bye", "</b>"]
        assert page.tokens() is not first

    def test_text_tokens_excludes_tags(self):
        page = Page(url="x", html="<b>hi there</b>")
        assert [t.text for t in page.text_tokens()] == ["hi", "there"]


class TestProperties:
    @given(st.text(max_size=100))
    def test_no_token_contains_whitespace(self, text):
        for token in tokenize_text(text):
            assert not any(ch.isspace() for ch in token.text)

    @given(st.text(max_size=100))
    def test_no_empty_tokens(self, text):
        for token in tokenize_text(text):
            assert token.text

    @given(st.text(max_size=100))
    def test_non_separator_characters_preserved_in_order(self, text):
        # Joining all token texts reproduces the input minus whitespace.
        joined = "".join(t.text for t in tokenize_text(text))
        expected = "".join(ch for ch in text if not ch.isspace())
        assert joined == expected

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60))
    def test_indices_always_sequential(self, text):
        tokens = tokenize_text(text)
        assert [t.index for t in tokens] == list(range(len(tokens)))

"""Tests for the resilient retrieval layer and chaos pipeline runs."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigError, FetchError
from repro.core.pipeline import SegmentationPipeline
from repro.crawl.crawler import crawl_site
from repro.crawl.resilient import (
    GAP_BUDGET,
    GAP_CIRCUIT_OPEN,
    GAP_PERMANENT,
    GAP_RETRIES_EXHAUSTED,
    CircuitBreaker,
    CrawlBudget,
    CrawlHealth,
    ResilientFetcher,
    RetryPolicy,
    url_class,
)
from repro.sitegen.corpus import build_site
from repro.sitegen.faults import FaultPlan, FaultyTransport


class TestUrlClass:
    def test_digit_runs_collapse(self):
        assert url_class("ohio-p0-detail7.html") == "ohio-p#-detail#.html"
        assert url_class("ohio-p1-detail12.html") == "ohio-p#-detail#.html"

    def test_distinct_shapes_stay_distinct(self):
        assert url_class("ohio-ad0.html") != url_class("ohio-p0-detail0.html")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=3.0, jitter=0.0
        )
        delays = [policy.delay_before("u", attempt) for attempt in (2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.25, seed=3)
        first = policy.delay_before("a.html", 2)
        assert first == policy.delay_before("a.html", 2)
        assert 0.75 <= first <= 1.25
        assert first != policy.delay_before("b.html", 2)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        cls = "x-#.html"
        for _ in range(3):
            assert breaker.allows(cls, now=0.0)
            breaker.record_failure(cls, now=0.0)
        assert breaker.trips == 1
        assert not breaker.allows(cls, now=5.0)
        assert breaker.open_classes(now=5.0) == [cls]
        # Half-open probe after cooldown; success closes the circuit.
        assert breaker.allows(cls, now=10.0)
        breaker.record_success(cls)
        assert breaker.allows(cls, now=10.0)

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("c", now=0.0)
        breaker.record_success("c")
        breaker.record_failure("c", now=0.0)
        assert breaker.allows("c", now=0.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)


class TestCrawlBudget:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CrawlBudget(max_requests=0)
        with pytest.raises(ConfigError):
            CrawlBudget(deadline_s=0.0)


class TestResilientFetcher:
    def test_transient_failures_are_retried_to_success(self):
        site = build_site("ohio")
        transport = FaultyTransport(site, FaultPlan(seed=1, transient_rate=1.0))
        fetcher = ResilientFetcher(transport, retry=RetryPolicy(max_attempts=4))
        url = site.truth[0].rows[0].detail_url
        page = fetcher.try_fetch(url)
        assert page is not None and page.url == url
        assert fetcher.health.recovered == 1
        assert fetcher.health.retries >= 1
        assert fetcher.health.gaps == {}

    def test_retry_exhaustion_becomes_gap(self):
        site = build_site("ohio")
        transport = FaultyTransport(
            site,
            FaultPlan(seed=1, transient_rate=1.0, max_transient_failures=5),
        )
        fetcher = ResilientFetcher(transport, retry=RetryPolicy(max_attempts=2))
        # Find a URL that fails more times than the retry policy allows.
        url = next(
            u
            for u in site.urls()
            if transport.plan.failures_before_recovery(u) >= 2
        )
        assert fetcher.try_fetch(url) is None
        assert fetcher.health.gaps[url] == GAP_RETRIES_EXHAUSTED

    def test_permanent_failure_not_retried(self):
        site = build_site("ohio")
        transport = FaultyTransport(site, FaultPlan(seed=1, permanent_rate=1.0))
        fetcher = ResilientFetcher(transport)
        url = site.truth[0].rows[0].detail_url
        assert fetcher.try_fetch(url) is None
        assert fetcher.health.gaps[url] == GAP_PERMANENT
        assert fetcher.health.requests == 1  # no retry spent on a 404

    def test_request_budget_stops_crawl(self):
        site = build_site("ohio")
        fetcher = ResilientFetcher(site, budget=CrawlBudget(max_requests=2))
        urls = [row.detail_url for row in site.truth[0].rows[:4]]
        pages = [fetcher.try_fetch(u) for u in urls]
        assert pages[0] is not None and pages[1] is not None
        assert pages[2] is None and pages[3] is None
        assert fetcher.health.budget_exhausted
        assert fetcher.health.gaps[urls[2]] == GAP_BUDGET

    def test_deadline_counts_simulated_latency(self):
        site = build_site("ohio")
        transport = FaultyTransport(
            site, FaultPlan(seed=2, latency_rate=1.0, latency_s=1.0)
        )
        fetcher = ResilientFetcher(
            transport, budget=CrawlBudget(deadline_s=2.5)
        )
        urls = [row.detail_url for row in site.truth[0].rows[:4]]
        obtained = [fetcher.try_fetch(u) for u in urls]
        assert sum(page is not None for page in obtained) < len(urls)
        assert fetcher.health.budget_exhausted
        assert fetcher.clock >= 2.5

    def test_cached_pages_cost_nothing(self):
        site = build_site("ohio")
        fetcher = ResilientFetcher(site, budget=CrawlBudget(max_requests=1))
        url = site.truth[0].rows[0].detail_url
        assert fetcher.try_fetch(url) is not None
        before = fetcher.health.requests
        assert fetcher.try_fetch(url) is not None  # budget already spent
        assert fetcher.health.requests == before

    def test_circuit_breaker_sheds_failing_class(self):
        site = build_site("ohio")
        transport = FaultyTransport(site, FaultPlan(seed=1, permanent_rate=1.0))
        fetcher = ResilientFetcher(
            transport, breaker=CircuitBreaker(failure_threshold=2, cooldown_s=99.0)
        )
        urls = [row.detail_url for row in site.truth[0].rows[:4]]
        for url in urls:
            assert fetcher.try_fetch(url) is None
        reasons = [fetcher.health.gaps[u] for u in urls]
        assert reasons[:2] == [GAP_PERMANENT, GAP_PERMANENT]
        assert reasons[2:] == [GAP_CIRCUIT_OPEN, GAP_CIRCUIT_OPEN]
        assert fetcher.health.breaker_trips >= 1
        # Only the failing class is shed; other URL shapes still fetch.
        assert fetcher.health.requests == 2

    def test_strict_fetch_raises_with_reason(self):
        site = build_site("ohio")
        transport = FaultyTransport(site, FaultPlan(seed=1, permanent_rate=1.0))
        fetcher = ResilientFetcher(transport)
        with pytest.raises(FetchError, match=GAP_PERMANENT):
            fetcher.fetch(site.truth[0].rows[0].detail_url)


class TestCrawlSite:
    def test_pristine_crawl_matches_truth(self):
        site = build_site("ohio")
        crawl = crawl_site(site)
        assert [p.url for p in crawl.list_pages] == [
            p.url for p in site.list_pages
        ]
        for index, details in enumerate(crawl.detail_pages_per_list):
            expected = [p.url for p in site.detail_pages(index)]
            assert [p.url for p in details] == expected
        assert crawl.health.quarantined_pages == []
        assert crawl.health.retries == 0

    def test_health_is_reproducible(self):
        plan = FaultPlan(seed=42, transient_rate=0.3)
        first = crawl_site(build_site("ohio"), fault_plan=plan)
        second = crawl_site(build_site("ohio"), fault_plan=plan)
        assert first.health.as_dict() == second.health.as_dict()
        assert first.health.retries > 0

    def test_budget_starved_pages_quarantined_not_fatal(self):
        crawl = crawl_site(
            build_site("ohio"), budget=CrawlBudget(max_requests=3)
        )
        assert len(crawl.results) == 2  # both pages attempted
        assert crawl.health.budget_exhausted
        assert len(crawl.list_pages) < 2
        assert crawl.health.quarantined_pages  # starved page recorded


class TestChaosPipeline:
    def test_acceptance_30_percent_transient(self):
        """ISSUE acceptance: 30% transient faults, default corpus site.

        The run must complete, recover >= 90% of transiently failing
        pages, and produce an exactly reproducible CrawlHealth.
        """
        plan = FaultPlan(seed=42, transient_rate=0.3)

        def run():
            pipeline = SegmentationPipeline("prob")
            return pipeline.segment_generated_site(
                build_site("ohio"), fault_plan=plan
            )

        first, second = run(), run()
        assert first.crawl_health is not None
        assert first.crawl_health.recovery_rate >= 0.9
        assert first.crawl_health.as_dict() == second.crawl_health.as_dict()
        assert len(first.pages) == 2
        for page_run in first.pages:
            assert page_run.segmentation.meta["crawl"]["retries"] > 0

    def test_pristine_run_has_no_health(self):
        run = SegmentationPipeline("prob").segment_generated_site(
            build_site("butler")
        )
        assert run.crawl_health is None

    def test_heavy_permanent_faults_degrade_gracefully(self):
        # Kill enough pages that sample completeness suffers; the
        # pipeline must still return a SiteRun without raising.
        plan = FaultPlan(seed=7, permanent_rate=0.5)
        run = SegmentationPipeline("prob").segment_generated_site(
            build_site("ohio"), fault_plan=plan
        )
        assert run.crawl_health is not None
        assert run.crawl_health.gap_count > 0

    def test_single_surviving_list_page_whole_page_fallback(self):
        site = build_site("butler")
        health = CrawlHealth()
        run = SegmentationPipeline("prob").segment_site(
            [site.list_pages[0]],
            [site.detail_pages(0)],
            crawl_health=health,
        )
        assert run.whole_page_fallback
        assert "single_list_page" in health.fallbacks
        assert len(run.pages) == 1
        assert run.pages[0].segmentation.record_count > 0

    def test_empty_sample_yields_empty_run(self):
        health = CrawlHealth()
        run = SegmentationPipeline("prob").segment_site([], [], crawl_health=health)
        assert run.pages == []
        assert run.whole_page_fallback
        assert "empty_sample" in health.fallbacks
